// Package gang adds all-or-nothing gang admission, timeout-and-release
// capacity hoarding, and checkpoint-aware preemption on top of any
// task-at-a-time scheduler (DESIGN.md §14).
//
// A Coordinator wraps an inner scheduler.Scheduler. Each round it
// serves gang jobs (workload.Job.Gang) before anything else: a gang
// whose quorum (GangQuorum) cannot yet be co-placed launches nothing;
// when the whole quorum fits against the round-start free ledger, all
// members commit in a single round. While waiting, the gang may hoard
// the partial placement it could make — capacity reservations in the
// shared reserve.Table — so singleton churn cannot indefinitely keep a
// large gang from accumulating space. Hoards expire after HoldSec and
// are returned to the pool (timeout-and-release), with an equal
// cooldown before the gang may hoard again, so a hopeless hoard cannot
// monopolize machines. A gang that has waited past PreemptSec may
// evict the lowest-priority preemptible running tasks; evictions are
// charged through the normal attempt accounting by the caller (RM or
// simulator), exactly like a machine-failure requeue.
//
// The coordinator is deliberately core-agnostic: it mutates only the
// view it hands the inner scheduler (jobs filtered, committed demand
// charged), so the reference/incremental/parallel cores stay
// bit-identical under it. When no gang state exists it returns the
// inner scheduler's decisions on the untouched view, making the
// feature digest-neutral for non-gang workloads.
package gang

import (
	"sort"

	"github.com/tetris-sched/tetris/internal/reserve"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/workload"
)

// Config parameterizes the coordinator. The zero value takes the
// defaults noted per field.
type Config struct {
	// HoldSec bounds how long a gang may hoard partial placements
	// before they are released, and how long it must then wait before
	// hoarding again. Default 30.
	HoldSec float64
	// PreemptSec is the wait bound after which an unsatisfied feasible
	// gang may preempt lower-priority preemptible tasks, and the
	// minimum spacing between preemption waves for one gang.
	// Default 60.
	PreemptSec float64
	// MaxPreemptPerRound caps evictions per round across all gangs,
	// bounding preemption churn. Default 8.
	MaxPreemptPerRound int
}

// DefaultConfig returns the default coordinator knobs.
func DefaultConfig() Config {
	return Config{HoldSec: 30, PreemptSec: 60, MaxPreemptPerRound: 8}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.HoldSec <= 0 {
		c.HoldSec = d.HoldSec
	}
	if c.PreemptSec <= 0 {
		c.PreemptSec = d.PreemptSec
	}
	if c.MaxPreemptPerRound <= 0 {
		c.MaxPreemptPerRound = d.MaxPreemptPerRound
	}
	return c
}

// Running describes one running task the coordinator may consider as a
// preemption victim. The caller (RM or simulator) supplies the list;
// order does not matter — the coordinator sorts deterministically.
type Running struct {
	JobID   int
	Task    workload.TaskID
	Machine int
	// Demand is the local demand charged for the task, used to decide
	// how many victims cover a gang's deficit.
	Demand resources.Vector
}

// Preemption is one eviction decision: kill Task on Machine to make
// room for gang ForJob. The caller requeues the task through the
// normal attempt accounting.
type Preemption struct {
	JobID   int
	Task    workload.TaskID
	Machine int
	ForJob  int
}

// Commit records a gang whose quorum launched this round.
type Commit struct {
	JobID int
	// WaitSec is the admission latency: time from when the gang first
	// wanted quorum to this commit.
	WaitSec float64
	// Members is the number of tasks launched in the commit.
	Members int
}

// Release records a hoard timeout: the gang's held machines returned
// to the pool.
type Release struct {
	JobID int
	// Held is the number of machines whose hoarded capacity was
	// released.
	Held int
}

// Decision is one round's full output.
type Decision struct {
	Assignments []scheduler.Assignment
	Preemptions []Preemption
	Commits     []Commit
	Releases    []Release
}

// reservationHolder is implemented by inner schedulers (Tetris) that
// expose their reservation table; the coordinator then shares it, so
// gang hoards close machines to the inner fill loops and the
// starvation guard never reserves a hoarded machine.
type reservationHolder interface {
	Reservations() *reserve.Table
}

// Coordinator implements gang admission around an inner scheduler. It
// is not concurrency-safe; like the schedulers it wraps, it is owned
// by a single scheduling loop.
type Coordinator struct {
	inner scheduler.Scheduler
	cfg   Config
	res   *reserve.Table
	// shared is true when res is the inner scheduler's own table; when
	// false the coordinator must hide hoarded machines from the inner
	// scheduler by charging them in the view.
	shared bool
	// waitSince is when each gang job first wanted (and could not get)
	// quorum; cleared on commit. Admission latency derives from it.
	waitSince map[int]float64
	// hoardSince is when the gang's current hoard epoch began.
	hoardSince map[int]float64
	// hoardHeld is the machine count of the gang's hoard last round.
	hoardHeld map[int]int
	// noHoardUntil is the cooldown gate after a timed-out hoard.
	noHoardUntil map[int]float64
	// lastPreempt spaces preemption waves per gang.
	lastPreempt map[int]float64
}

// New wraps inner with a gang coordinator.
func New(inner scheduler.Scheduler, cfg Config) *Coordinator {
	c := &Coordinator{
		inner:        inner,
		cfg:          cfg.withDefaults(),
		waitSince:    make(map[int]float64),
		hoardSince:   make(map[int]float64),
		hoardHeld:    make(map[int]int),
		noHoardUntil: make(map[int]float64),
		lastPreempt:  make(map[int]float64),
	}
	if rh, ok := inner.(reservationHolder); ok {
		c.res = rh.Reservations()
		c.shared = true
	} else {
		c.res = reserve.New()
	}
	return c
}

// Name implements scheduler.Scheduler.
func (c *Coordinator) Name() string { return "gang+" + c.inner.Name() }

// Inner returns the wrapped scheduler.
func (c *Coordinator) Inner() scheduler.Scheduler { return c.inner }

// Config returns the coordinator's effective configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Schedule implements scheduler.Scheduler for callers that cannot act
// on preemptions: it decides with no preemption victims available.
func (c *Coordinator) Schedule(v *scheduler.View) []scheduler.Assignment {
	return c.Decide(v, nil).Assignments
}

// gangNeed returns how many more members must launch for quorum. Zero
// or negative means the quorum is currently satisfied by running+done
// members (stragglers beyond quorum flow through the inner scheduler).
func gangNeed(j *scheduler.JobState) int {
	q := j.Job.GangQuorum()
	done := j.Status.DoneInStage(0)
	pending := j.Status.PendingInStage(0)
	running := j.Job.NumTasks() - done - pending
	return q - done - running
}

// Feasible reports whether gang job j could ever be co-placed on the
// live machines of v: every pending member's demand must fit some live
// machine's total capacity, and the aggregate local demand must fit
// the aggregate live capacity. Infeasible gangs neither hoard nor
// preempt — the same max-peak rule the starvation guard applies before
// reserving a machine.
func Feasible(v *scheduler.View, j *scheduler.JobState) bool {
	pending := j.Status.AppendPending(0, j.Status.PendingInStage(0), nil)
	var totalLive, sum resources.Vector
	for _, m := range v.Machines {
		if !m.Down {
			totalLive = totalLive.Add(m.Capacity)
		}
	}
	for _, task := range pending {
		peak := v.DemandPeak(j, task)
		fits := false
		for _, m := range v.Machines {
			if m.Down {
				continue
			}
			if scheduler.EffectiveDemand(peak, task, m.ID).FitsIn(m.Capacity) {
				fits = true
				break
			}
		}
		if !fits {
			return false
		}
		sum = sum.Add(localDemand(peak))
	}
	return sum.FitsIn(totalLive)
}

// localDemand strips the placement-dependent network components from a
// peak vector, matching the RM router's shard-feasibility view.
func localDemand(peak resources.Vector) resources.Vector {
	return peak.With(resources.NetIn, 0).With(resources.NetOut, 0)
}

// Decide runs one round: gang admission first, then the inner
// scheduler over the remaining capacity and non-gang (or
// quorum-satisfied) jobs. running lists currently running tasks as
// preemption candidates; nil disables preemption.
func (c *Coordinator) Decide(v *scheduler.View, running []Running) Decision {
	if c.idle(v) {
		// Digest-neutral fast path: no gang jobs, no hoards, no wait
		// state — hand the untouched view to the inner scheduler.
		return Decision{Assignments: c.inner.Schedule(v)}
	}
	now := v.Time
	byJob := make(map[int]*scheduler.JobState, len(v.Jobs))
	for _, j := range v.Jobs {
		byJob[j.Job.ID] = j
	}
	c.sweep(byJob)

	// Round-start free ledger, before any hoard charges: gang commits
	// are decided against what is genuinely free right now.
	free := make([]resources.Vector, len(v.Machines))
	for i, m := range v.Machines {
		free[i] = m.FreePacking()
	}
	// Drop last round's hoards — they are recomputed from scratch
	// below, against this round's pending membership.
	c.res.Sweep(0, func(mid int, r reserve.Reservation) bool {
		return r.Kind == reserve.Gang
	}, nil)

	var dec Decision

	// Unsatisfied gangs in deterministic service order: highest
	// priority first, then longest waiting, then lowest job ID.
	var gangs []*scheduler.JobState
	for _, j := range v.Jobs { // ascending job-ID order
		if !j.Job.Gang {
			continue
		}
		if gangNeed(j) <= 0 {
			c.clearJob(j.Job.ID)
			continue
		}
		if _, ok := c.waitSince[j.Job.ID]; !ok {
			c.waitSince[j.Job.ID] = now
		}
		gangs = append(gangs, j)
	}
	sort.SliceStable(gangs, func(a, b int) bool {
		ja, jb := gangs[a], gangs[b]
		if ja.Job.Priority != jb.Job.Priority {
			return ja.Job.Priority > jb.Job.Priority
		}
		wa, wb := c.waitSince[ja.Job.ID], c.waitSince[jb.Job.ID]
		if wa != wb {
			return wa < wb
		}
		return ja.Job.ID < jb.Job.ID
	})

	victims := c.sortVictims(running, byJob)
	victimized := make(map[workload.TaskID]bool)
	preempted := 0

	for _, j := range gangs {
		id := j.Job.ID
		need := gangNeed(j)
		members := j.Status.AppendPending(0, j.Status.PendingInStage(0), nil)
		placed := c.placeGang(v, j, members, need, free)
		if len(placed) >= need {
			// Commit: the whole quorum launches this round, charged
			// against the shared free ledger.
			for _, p := range placed {
				dec.Assignments = append(dec.Assignments, p)
				free[p.Machine] = free[p.Machine].Sub(p.Local).Max(resources.Vector{})
			}
			dec.Commits = append(dec.Commits, Commit{
				JobID:   id,
				WaitSec: now - c.waitSince[id],
				Members: len(placed),
			})
			c.clearJob(id)
			continue
		}
		// Quorum not met: nothing launches (all-or-nothing). Decide
		// whether to hoard the partial placement, and whether the wait
		// has earned a preemption wave.
		feasible := Feasible(v, j)
		if feasible && now-c.waitSince[id] >= c.cfg.PreemptSec &&
			now-c.lastPreempt[id] >= c.cfg.PreemptSec &&
			preempted < c.cfg.MaxPreemptPerRound {
			evs := c.preemptFor(v, j, members, need, placed, victims, victimized,
				c.cfg.MaxPreemptPerRound-preempted)
			if len(evs) > 0 {
				dec.Preemptions = append(dec.Preemptions, evs...)
				preempted += len(evs)
				c.lastPreempt[id] = now
			}
		}
		if hs, ok := c.hoardSince[id]; ok && now-hs >= c.cfg.HoldSec {
			// Timeout-and-release: return the hoarded capacity and
			// enter cooldown so the next hoard epoch cannot start
			// immediately.
			dec.Releases = append(dec.Releases, Release{JobID: id, Held: c.hoardHeld[id]})
			delete(c.hoardSince, id)
			delete(c.hoardHeld, id)
			c.noHoardUntil[id] = now + c.cfg.HoldSec
		} else if feasible && now >= c.noHoardUntil[id] && len(placed) > 0 {
			for _, p := range placed {
				cur, _ := c.res.Get(p.Machine)
				c.res.Put(p.Machine, reserve.Reservation{
					Kind:     reserve.Gang,
					Holder:   id,
					Capacity: cur.Capacity.Add(p.Local),
					Since:    now,
					Expires:  now + c.cfg.HoldSec,
				})
				free[p.Machine] = free[p.Machine].Sub(p.Local).Max(resources.Vector{})
			}
			if _, ok := c.hoardSince[id]; !ok {
				c.hoardSince[id] = now
			}
			c.hoardHeld[id] = len(c.res.HolderMachines(id))
		}
	}

	// Inner round: non-gang and quorum-satisfied jobs, over a view with
	// the gang commits charged (and, when the reservation table is not
	// shared, hoarded machines closed).
	dec.Assignments = append(dec.Assignments, c.innerRound(v, byJob, dec.Assignments)...)
	return dec
}

// idle reports whether the round can take the digest-neutral fast
// path.
func (c *Coordinator) idle(v *scheduler.View) bool {
	if c.res.Len() > 0 && !c.shared {
		return false
	}
	if c.shared {
		// Gang-kind entries mean live hoards even if no gang job is
		// visible this round (it may have just departed).
		gangHeld := false
		c.res.Each(func(mid int, r reserve.Reservation) {
			if r.Kind == reserve.Gang {
				gangHeld = true
			}
		})
		if gangHeld {
			return false
		}
	}
	if len(c.waitSince) > 0 || len(c.hoardSince) > 0 ||
		len(c.noHoardUntil) > 0 || len(c.lastPreempt) > 0 {
		return false
	}
	for _, j := range v.Jobs {
		if j.Job.Gang {
			return false
		}
	}
	return true
}

// sweep drops soft state for jobs no longer in the view, and any hoard
// whose holder departed.
func (c *Coordinator) sweep(byJob map[int]*scheduler.JobState) {
	for id := range c.waitSince {
		if byJob[id] == nil {
			delete(c.waitSince, id)
		}
	}
	for id := range c.hoardSince {
		if byJob[id] == nil {
			delete(c.hoardSince, id)
			delete(c.hoardHeld, id)
		}
	}
	for id := range c.noHoardUntil {
		if byJob[id] == nil {
			delete(c.noHoardUntil, id)
		}
	}
	for id := range c.lastPreempt {
		if byJob[id] == nil {
			delete(c.lastPreempt, id)
		}
	}
	c.res.Sweep(0, func(mid int, r reserve.Reservation) bool {
		return r.Kind == reserve.Gang && byJob[r.Holder] == nil
	}, nil)
}

// clearJob drops all per-gang soft state (on commit or quorum
// satisfaction).
func (c *Coordinator) clearJob(id int) {
	delete(c.waitSince, id)
	delete(c.hoardSince, id)
	delete(c.hoardHeld, id)
	delete(c.noHoardUntil, id)
	delete(c.lastPreempt, id)
	c.res.Sweep(0, func(mid int, r reserve.Reservation) bool {
		return r.Kind == reserve.Gang && r.Holder == id
	}, nil)
}

// placeGang first-fits as many of the gang's pending members as it can
// against a copy of the free ledger, visiting machines in ascending ID
// order. It stops once need members are placed. Machines reserved for
// other holders (starved tasks, other gangs' hoards) are closed. Gang
// members are charged local demand only; their input-block remote
// charges are intentionally not modeled (ML/MPI gangs are generated
// without input locality), which keeps the all-or-nothing commit a
// pure function of the free ledger.
func (c *Coordinator) placeGang(v *scheduler.View, j *scheduler.JobState, members []*workload.Task, need int, free []resources.Vector) []scheduler.Assignment {
	if need <= 0 || len(members) < need {
		return nil
	}
	scratch := make([]resources.Vector, len(free))
	copy(scratch, free)
	var placed []scheduler.Assignment
	for _, task := range members {
		if len(placed) >= need {
			break
		}
		peak := v.DemandPeak(j, task)
		for _, m := range v.Machines {
			if m.Down {
				continue
			}
			if r, held := c.res.Get(m.ID); held && r.Holder != j.Job.ID {
				continue
			}
			d := scheduler.EffectiveDemand(peak, task, m.ID)
			if !d.FitsIn(scratch[m.ID]) {
				continue
			}
			scratch[m.ID] = scratch[m.ID].Sub(d).Max(resources.Vector{})
			placed = append(placed, scheduler.Assignment{
				JobID: j.Job.ID, Task: task, Machine: m.ID, Local: d,
			})
			break
		}
	}
	return placed
}

// sortVictims filters running tasks down to preemptible ones and
// orders them lowest priority first (then job ID, stage, index) — the
// deterministic eviction order.
func (c *Coordinator) sortVictims(running []Running, byJob map[int]*scheduler.JobState) []Running {
	var out []Running
	for _, r := range running {
		j := byJob[r.JobID]
		if j == nil || !j.Job.Preemptible {
			continue
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(a, b int) bool {
		ja, jb := byJob[out[a].JobID], byJob[out[b].JobID]
		if ja.Job.Priority != jb.Job.Priority {
			return ja.Job.Priority < jb.Job.Priority
		}
		ta, tb := out[a].Task, out[b].Task
		if ta.Job != tb.Job {
			return ta.Job < tb.Job
		}
		if ta.Stage != tb.Stage {
			return ta.Stage < tb.Stage
		}
		return ta.Index < tb.Index
	})
	return out
}

// preemptFor picks victims for one gang: strictly lower-priority
// preemptible running tasks, lowest priority first, until their freed
// demand covers the gang's placement deficit or the per-round cap is
// hit. The freed capacity materializes next round, once the NM kills
// land; this round the gang keeps waiting.
func (c *Coordinator) preemptFor(v *scheduler.View, j *scheduler.JobState, members []*workload.Task, need int, placed []scheduler.Assignment, victims []Running, victimized map[workload.TaskID]bool, budget int) []Preemption {
	// Deficit: the aggregate local demand of the needed members that
	// first-fit failed to find room for.
	short := need - len(placed)
	if short <= 0 {
		return nil
	}
	var deficit resources.Vector
	counted := make(map[workload.TaskID]bool, len(placed))
	for _, p := range placed {
		counted[p.Task.ID] = true
	}
	n := 0
	for _, task := range members {
		if counted[task.ID] || n >= short {
			continue
		}
		deficit = deficit.Add(localDemand(v.DemandPeak(j, task)))
		n++
	}
	var out []Preemption
	var freed resources.Vector
	for _, vic := range victims {
		if len(out) >= budget {
			break
		}
		if victimized[vic.Task] {
			continue
		}
		vj := byJobLookup(v, vic.JobID)
		if vj == nil || vj.Job.Priority >= j.Job.Priority {
			// Only strictly lower-priority tasks may be evicted; the
			// victim list is sorted ascending by priority, so nothing
			// later qualifies either.
			break
		}
		victimized[vic.Task] = true
		out = append(out, Preemption{
			JobID: vic.JobID, Task: vic.Task, Machine: vic.Machine, ForJob: j.Job.ID,
		})
		freed = freed.Add(vic.Demand)
		if deficit.FitsIn(freed) {
			break
		}
	}
	return out
}

func byJobLookup(v *scheduler.View, id int) *scheduler.JobState {
	for _, j := range v.Jobs {
		if j.Job.ID == id {
			return j
		}
	}
	return nil
}

// innerRound runs the wrapped scheduler over the non-gang slice of the
// round: unsatisfied gang jobs are hidden (so the inner scheduler can
// never launch a partial gang), committed gang demand is transiently
// charged to the machines, and — when the reservation table is not
// shared with the inner scheduler — hoarded machines are closed by
// charging their full capacity. All mutations are restored before
// returning; Scheduler implementations must not see them persist.
func (c *Coordinator) innerRound(v *scheduler.View, byJob map[int]*scheduler.JobState, gangAsgs []scheduler.Assignment) []scheduler.Assignment {
	inner := *v
	inner.Jobs = make([]*scheduler.JobState, 0, len(v.Jobs))
	for _, j := range v.Jobs {
		if j.Job.Gang && gangNeed(j) > 0 {
			continue
		}
		inner.Jobs = append(inner.Jobs, j)
	}
	charge := make(map[int]resources.Vector)
	for _, a := range gangAsgs {
		charge[a.Machine] = charge[a.Machine].Add(a.Local)
	}
	if !c.shared {
		c.res.Each(func(mid int, r reserve.Reservation) {
			if r.Kind == reserve.Gang && mid < len(v.Machines) {
				charge[mid] = charge[mid].Add(v.Machines[mid].Capacity)
			}
		})
	}
	type saved struct {
		alloc, rep resources.Vector
	}
	restore := make(map[int]saved, len(charge))
	for mid, ch := range charge {
		if mid >= len(v.Machines) {
			continue
		}
		m := v.Machines[mid]
		restore[mid] = saved{m.Allocated, m.Reported}
		m.Allocated = m.Allocated.Add(ch)
		m.Reported = m.Reported.Add(ch)
	}
	out := c.inner.Schedule(&inner)
	for mid, s := range restore {
		v.Machines[mid].Allocated = s.alloc
		v.Machines[mid].Reported = s.rep
	}
	return out
}
