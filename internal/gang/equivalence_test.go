package gang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/workload"
)

// The gang twin-world driver mirrors the scheduler package's
// equivalence harness: several worlds share one immutable job set and
// one fault/completion script (identical rng seeds), differ only in
// the inner scheduler core, and must emit field-for-field identical
// decisions every round — assignments, preemptions, commits and
// releases alike.

func genGangCaps(rng *rand.Rand, n int) []resources.Vector {
	sizes := []resources.Vector{
		resources.New(16, 32, 200, 200, 1000, 1000),
		resources.New(8, 16, 100, 100, 500, 500),
		resources.New(32, 64, 400, 400, 2000, 2000),
	}
	caps := make([]resources.Vector, n)
	for i := range caps {
		caps[i] = sizes[rng.Intn(len(sizes))]
	}
	return caps
}

// genGangJobs builds a mix of preemptible singleton fillers and gang
// jobs with varying priorities and quorums.
func genGangJobs(rng *rand.Rand, n int) ([]*workload.Job, []float64) {
	jobs := make([]*workload.Job, n)
	arrive := make([]float64, n)
	for i := range jobs {
		id := i + 1
		j := &workload.Job{ID: id, Weight: 1}
		st := &workload.Stage{Name: "s"}
		var peak resources.Vector
		var nt int
		if rng.Float64() < 0.4 {
			// Gang: homogeneous members, mid-size demand.
			j.Gang = true
			j.Priority = 3 + rng.Intn(6)
			nt = 2 + rng.Intn(5)
			if rng.Intn(2) == 0 {
				j.MinMembers = 1 + rng.Intn(nt)
			}
			peak = resources.New(6+float64(rng.Intn(10)), 12+float64(rng.Intn(20)), 0, 0, 0, 0)
		} else {
			// Filler: small preemptible singles.
			j.Preemptible = true
			j.Priority = rng.Intn(3)
			nt = 1 + rng.Intn(6)
			peak = resources.New(1+float64(rng.Intn(4)), 2+float64(rng.Intn(6)), 0, 0, 0, 0)
		}
		for k := 0; k < nt; k++ {
			st.Tasks = append(st.Tasks, &workload.Task{
				ID:   workload.TaskID{Job: id, Stage: 0, Index: k},
				Peak: peak,
				Work: workload.Work{CPUSeconds: 20 + rng.Float64()*40},
			})
		}
		j.Stages = []*workload.Stage{st}
		arrive[i] = rng.Float64() * 20
		jobs[i] = j
	}
	return jobs, arrive
}

type gangWorld struct {
	c *Coordinator
	// bare, when non-nil, replaces the coordinator entirely: the world
	// schedules through the raw inner scheduler. Used to prove the
	// coordinator is digest-neutral on non-gang workloads.
	bare     scheduler.Scheduler
	machines []*scheduler.MachineState
	jobs     []*workload.Job
	arrive   []float64
	states   map[int]*scheduler.JobState
	running  []Running
	rng      *rand.Rand
	total    resources.Vector
}

func newGangWorld(seed int64, core scheduler.Core, workers int, caps []resources.Vector, jobs []*workload.Job, arrive []float64) *gangWorld {
	tc := scheduler.DefaultTetrisConfig()
	tc.Core = core
	tc.Workers = workers
	tc.StarvationSec = 8
	w := &gangWorld{
		c:      New(scheduler.NewTetris(tc), Config{HoldSec: 4, PreemptSec: 8, MaxPreemptPerRound: 4}),
		jobs:   jobs,
		arrive: arrive,
		states: make(map[int]*scheduler.JobState),
		rng:    rand.New(rand.NewSource(seed)),
	}
	for i, c := range caps {
		w.machines = append(w.machines, &scheduler.MachineState{ID: i, Capacity: c})
		w.total = w.total.Add(c)
	}
	for _, j := range jobs {
		w.states[j.ID] = &scheduler.JobState{Job: j, Status: workload.NewStatus(j)}
	}
	return w
}

func (w *gangWorld) finished(js *scheduler.JobState) bool {
	for si := range js.Job.Stages {
		if js.Status.DoneInStage(si) != len(js.Job.Stages[si].Tasks) {
			return false
		}
	}
	return true
}

func (w *gangWorld) dropRunning(tid workload.TaskID) (Running, bool) {
	for i, r := range w.running {
		if r.Task == tid {
			out := r
			w.running = append(w.running[:i], w.running[i+1:]...)
			return out, true
		}
	}
	return Running{}, false
}

// step advances one round and returns a canonical rendering of the
// round's decision for cross-core comparison.
func (w *gangWorld) step(now float64) string {
	// Fault churn, identical across twins because machine state is.
	for _, m := range w.machines {
		if m.Down {
			if w.rng.Float64() < 0.3 {
				m.Down = false
			}
			continue
		}
		if w.rng.Float64() < 0.08 {
			m.Down = true
			m.Allocated = resources.Vector{}
			m.Reported = resources.Vector{}
			// Fail every running task on the machine.
			kept := w.running[:0]
			for _, r := range w.running {
				if r.Machine == m.ID {
					js := w.states[r.JobID]
					js.Status.MarkFailed(r.Task)
					js.Alloc = js.Alloc.Sub(r.Demand)
					continue
				}
				kept = append(kept, r)
			}
			w.running = kept
		}
	}
	v := &scheduler.View{Time: now, Machines: w.machines, Total: w.total}
	for _, j := range w.jobs {
		js := w.states[j.ID]
		if w.arrive[j.ID-1] <= now && !w.finished(js) {
			v.Jobs = append(v.Jobs, js)
		}
	}
	for _, m := range w.machines {
		if !m.Down {
			m.Reported = m.Allocated
		}
	}

	var dec Decision
	if w.bare != nil {
		dec = Decision{Assignments: w.bare.Schedule(v)}
	} else {
		dec = w.c.Decide(v, append([]Running(nil), w.running...))
	}

	var b strings.Builder
	for _, a := range dec.Assignments {
		fmt.Fprintf(&b, "A %v@%d %v|", a.Task.ID, a.Machine, a.Local)
	}
	for _, p := range dec.Preemptions {
		fmt.Fprintf(&b, "P %v@%d for %d|", p.Task, p.Machine, p.ForJob)
	}
	for _, cm := range dec.Commits {
		fmt.Fprintf(&b, "C %d n%d w%.3f|", cm.JobID, cm.Members, cm.WaitSec)
	}
	for _, r := range dec.Releases {
		fmt.Fprintf(&b, "R %d h%d|", r.JobID, r.Held)
	}

	// Apply assignments.
	for _, a := range dec.Assignments {
		js := w.states[a.JobID]
		js.Status.MarkRunning(a.Task.ID)
		js.Alloc = js.Alloc.Add(a.Local)
		w.machines[a.Machine].Allocated = w.machines[a.Machine].Allocated.Add(a.Local)
		for _, rc := range a.Remote {
			w.machines[rc.Machine].Allocated = w.machines[rc.Machine].Allocated.Add(rc.Charge)
		}
		w.running = append(w.running, Running{JobID: a.JobID, Task: a.Task.ID, Machine: a.Machine, Demand: a.Local})
	}
	// Apply preemptions: the "NM kill" lands within the round here.
	for _, p := range dec.Preemptions {
		r, ok := w.dropRunning(p.Task)
		if !ok {
			continue
		}
		js := w.states[p.JobID]
		js.Status.MarkFailed(p.Task)
		js.Alloc = js.Alloc.Sub(r.Demand)
		w.machines[r.Machine].Allocated = w.machines[r.Machine].Allocated.Sub(r.Demand).Max(resources.Vector{})
	}
	// Random completions over a snapshot of the running list.
	snap := append([]Running(nil), w.running...)
	for _, r := range snap {
		if w.rng.Float64() < 0.15 {
			if _, ok := w.dropRunning(r.Task); !ok {
				continue
			}
			js := w.states[r.JobID]
			js.Status.MarkDone(r.Task, now)
			js.Alloc = js.Alloc.Sub(r.Demand)
			w.machines[r.Machine].Allocated = w.machines[r.Machine].Allocated.Sub(r.Demand).Max(resources.Vector{})
		}
	}
	return b.String()
}

// TestGangScheduleEquivalence drives gang-bearing fault-injected
// worlds across all three scheduler cores and requires bit-identical
// decisions every round.
func TestGangScheduleEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		gen := rand.New(rand.NewSource(seed * 977))
		caps := genGangCaps(gen, 6)
		jobs, arrive := genGangJobs(gen, 12)
		worlds := map[string]*gangWorld{
			"incremental": newGangWorld(seed, scheduler.CoreIncremental, 0, caps, jobs, arrive),
			"reference":   newGangWorld(seed, scheduler.CoreReference, 0, caps, jobs, arrive),
			"parallel":    newGangWorld(seed, scheduler.CoreParallel, 3, caps, jobs, arrive),
		}
		for round := 0; round < 40; round++ {
			now := float64(round) * 2
			want := ""
			first := true
			for _, name := range []string{"incremental", "reference", "parallel"} {
				got := worlds[name].step(now)
				if first {
					want, first = got, false
					continue
				}
				if got != want {
					t.Fatalf("seed %d round %d: %s core diverged\nincremental: %s\n%s: %s",
						seed, round, name, want, name, got)
				}
			}
		}
	}
}

// TestDigestNeutralWhenUnused: on a workload with no gang jobs, the
// coordinator must emit exactly the decisions the bare inner scheduler
// would — round for round, byte for byte.
func TestDigestNeutralWhenUnused(t *testing.T) {
	gen := rand.New(rand.NewSource(7))
	caps := genGangCaps(gen, 6)
	jobs, arrive := genGangJobs(gen, 12)
	for _, j := range jobs {
		j.Gang = false
		j.MinMembers = 0
	}

	wrapped := newGangWorld(99, scheduler.CoreIncremental, 0, caps, jobs, arrive)
	plain := newGangWorld(99, scheduler.CoreIncremental, 0, caps, jobs, arrive)
	plain.bare = plain.c.Inner()
	for round := 0; round < 30; round++ {
		now := float64(round) * 2
		got, want := wrapped.step(now), plain.step(now)
		if got != want {
			t.Fatalf("round %d: coordinator not digest-neutral on a non-gang workload\nwrapped: %s\nbare:    %s",
				round, got, want)
		}
	}
}
