package cluster

import (
	"testing"

	"github.com/tetris-sched/tetris/internal/resources"
)

func TestNewAssignsRacks(t *testing.T) {
	c := New(45, FacebookProfile(), 20)
	if c.Size() != 45 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.NumRacks() != 3 {
		t.Fatalf("NumRacks = %d", c.NumRacks())
	}
	if c.Machines[0].Rack != 0 || c.Machines[19].Rack != 0 || c.Machines[20].Rack != 1 || c.Machines[44].Rack != 2 {
		t.Error("rack assignment wrong")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSingleRack(t *testing.T) {
	c := New(5, SmallProfile(), 0)
	for _, m := range c.Machines {
		if m.Rack != 0 {
			t.Fatalf("machine %d rack %d, want 0", m.ID, m.Rack)
		}
	}
	if c.NumRacks() != 1 {
		t.Errorf("NumRacks = %d", c.NumRacks())
	}
}

func TestEmptyCluster(t *testing.T) {
	c := New(0, FacebookProfile(), 20)
	if c.NumRacks() != 0 || c.Size() != 0 {
		t.Error("empty cluster accounting wrong")
	}
	if !c.TotalCapacity().IsZero() {
		t.Error("empty cluster capacity should be zero")
	}
}

func TestTotalCapacity(t *testing.T) {
	c := New(10, FacebookProfile(), 20)
	total := c.TotalCapacity()
	if got := total.Get(resources.CPU); got != 160 {
		t.Errorf("total cpu = %v", got)
	}
	if got := total.Get(resources.Memory); got != 320 {
		t.Errorf("total mem = %v", got)
	}
}

func TestValidateCatchesBadIDs(t *testing.T) {
	c := New(3, FacebookProfile(), 20)
	c.Machines[1].ID = 7
	if err := c.Validate(); err == nil {
		t.Error("misnumbered machine not detected")
	}
	c = New(3, FacebookProfile(), 20)
	c.Machines[2].Capacity = c.Machines[2].Capacity.With(resources.CPU, -1)
	if err := c.Validate(); err == nil {
		t.Error("negative capacity not detected")
	}
}

func TestProfiles(t *testing.T) {
	fb := FacebookProfile()
	if fb.Get(resources.CPU) != 16 || fb.Get(resources.Memory) != 32 {
		t.Errorf("Facebook profile = %v", fb)
	}
	dep := DeploymentProfile()
	if dep.Get(resources.NetIn) != 10000 {
		t.Errorf("deployment NIC = %v", dep.Get(resources.NetIn))
	}
	if SmallProfile().Get(resources.DiskRead) != 100 {
		t.Errorf("small profile disk = %v", SmallProfile())
	}
}

func TestNewDeploymentOversubscription(t *testing.T) {
	c := NewDeployment(40)
	if c.CrossRackMbps <= 0 {
		t.Fatal("deployment cluster must cap rack uplinks")
	}
	perRackEgress := float64(c.RackSize) * DeploymentProfile().Get(resources.NetOut)
	if got := perRackEgress / c.CrossRackMbps; got < 2.4 || got > 2.6 {
		t.Errorf("oversubscription = %v, want 2.5", got)
	}
}

func TestNewFacebookNoCap(t *testing.T) {
	c := NewFacebook(40)
	if c.CrossRackMbps != 0 {
		t.Error("facebook cluster should have uncapped core")
	}
	if c.Size() != 40 {
		t.Errorf("Size = %d", c.Size())
	}
}
