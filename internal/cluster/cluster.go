// Package cluster models the machines a scheduler places tasks on:
// per-machine multi-resource capacities and rack topology, including the
// two hardware profiles used in the paper's evaluation (§5.1).
package cluster

import (
	"fmt"

	"github.com/tetris-sched/tetris/internal/resources"
)

// Machine is one server. Capacity units follow resources.Vector: cores,
// GB, MB/s disk read, MB/s disk write, Mb/s network in, Mb/s network out.
type Machine struct {
	ID       int
	Rack     int
	Capacity resources.Vector
}

// Cluster is a set of machines organized into racks.
type Cluster struct {
	Machines []*Machine
	// RackSize is machines per rack (0 = single rack).
	RackSize int
	// CrossRackMbps caps each rack's uplink when > 0; the fluid simulator
	// shares it among that rack's cross-rack flows. The deployment
	// cluster in the paper has 2.5× oversubscription between racks.
	CrossRackMbps float64
}

// New builds a cluster of n identical machines with the given per-machine
// capacity, rackSize machines to a rack.
func New(n int, capacity resources.Vector, rackSize int) *Cluster {
	c := &Cluster{RackSize: rackSize}
	for i := 0; i < n; i++ {
		rack := 0
		if rackSize > 0 {
			rack = i / rackSize
		}
		c.Machines = append(c.Machines, &Machine{ID: i, Rack: rack, Capacity: capacity})
	}
	return c
}

// Size returns the number of machines.
func (c *Cluster) Size() int { return len(c.Machines) }

// NumRacks returns the number of racks.
func (c *Cluster) NumRacks() int {
	if len(c.Machines) == 0 {
		return 0
	}
	return c.Machines[len(c.Machines)-1].Rack + 1
}

// TotalCapacity sums machine capacities — the "one big bag of resources"
// aggregate view used by the upper-bound scheduler (§2.2.3).
func (c *Cluster) TotalCapacity() resources.Vector {
	var total resources.Vector
	for _, m := range c.Machines {
		total = total.Add(m.Capacity)
	}
	return total
}

// Validate checks machine ids are dense and capacities non-negative.
func (c *Cluster) Validate() error {
	for i, m := range c.Machines {
		if m.ID != i {
			return fmt.Errorf("machine at index %d has id %d", i, m.ID)
		}
		if !m.Capacity.NonNegative() {
			return fmt.Errorf("machine %d: negative capacity %v", i, m.Capacity)
		}
	}
	return nil
}

// FacebookProfile is the per-machine capacity the paper's trace-driven
// simulator uses for the Facebook cluster: 16 cores, 32 GB memory, 4
// disks at 50 MB/s each for read and write, and a 1 Gbps NIC (§5.1).
func FacebookProfile() resources.Vector {
	return resources.New(16, 32, 200, 200, 1000, 1000)
}

// DeploymentProfile approximates the 250-machine deployment cluster: more
// cores and memory per machine, 4 drives, and a 10 Gbps NIC (§5.1; the
// camera-ready digits are partially illegible, so we use a typical 2014
// big-data server: 24 cores, 64 GB, 400 MB/s aggregate disk, 10 Gbps).
func DeploymentProfile() resources.Vector {
	return resources.New(24, 64, 400, 400, 10000, 10000)
}

// SmallProfile approximates the small test cluster used for the ingestion
// micro-benchmark: fewer cores, 16 GB, one disk, 1 Gbps NIC.
func SmallProfile() resources.Vector {
	return resources.New(8, 16, 100, 100, 1000, 1000)
}

// NewFacebook builds an n-machine cluster with FacebookProfile capacities
// in 20-machine racks (no cross-rack cap: the Facebook cluster is listed
// with oversubscription ~1).
func NewFacebook(n int) *Cluster { return New(n, FacebookProfile(), 20) }

// NewDeployment builds an n-machine cluster with DeploymentProfile
// capacities, 20 machines to a rack and 2.5× oversubscribed rack uplinks.
func NewDeployment(n int) *Cluster {
	c := New(n, DeploymentProfile(), 20)
	perRack := float64(c.RackSize) * DeploymentProfile().Get(resources.NetOut)
	c.CrossRackMbps = perRack / 2.5
	return c
}
