package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty should report !ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty should report !ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if want := "abc"; got[0]+got[1]+got[2] != want {
		t.Errorf("order = %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 100; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("tie-break pop %d = %d, ok=%v", i, v, ok)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.Push(1, 42)
	at, v, ok := q.Peek()
	if !ok || at != 1 || v != 42 {
		t.Fatalf("Peek = %v %v %v", at, v, ok)
	}
	if q.Len() != 1 {
		t.Errorf("Peek removed the event")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[float64]
	r := rand.New(rand.NewSource(3))
	var times []float64
	// Push a batch, pop half, push more: popped sequence must still be
	// globally sorted because new pushes are always in the future here.
	now := 0.0
	var popped []float64
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			at := now + r.Float64()*100
			q.Push(at, at)
			times = append(times, at)
		}
		for i := 0; i < 10; i++ {
			at, v, ok := q.Pop()
			if !ok {
				t.Fatal("queue unexpectedly empty")
			}
			if at != v {
				t.Fatalf("value mismatch: %v %v", at, v)
			}
			popped = append(popped, at)
			now = at
		}
	}
	if !sort.Float64sAreSorted(popped) {
		t.Error("popped times are not sorted")
	}
	if q.Len() != len(times)-len(popped) {
		t.Errorf("Len = %d, want %d", q.Len(), len(times)-len(popped))
	}
}

func TestRandomizedAgainstSort(t *testing.T) {
	var q Queue[int]
	r := rand.New(rand.NewSource(9))
	var want []float64
	for i := 0; i < 1000; i++ {
		at := r.Float64() * 1e6
		q.Push(at, i)
		want = append(want, at)
	}
	sort.Float64s(want)
	for i := 0; i < 1000; i++ {
		at, _, ok := q.Pop()
		if !ok || at != want[i] {
			t.Fatalf("pop %d: at=%v want=%v ok=%v", i, at, want[i], ok)
		}
	}
}
