// Package eventq implements the deterministic time-ordered event queue
// that drives the discrete-event simulator. Events at equal timestamps
// pop in insertion order so that simulations are reproducible.
package eventq

import "container/heap"

// Queue is a min-heap of events ordered by (time, insertion sequence).
// The zero value is an empty queue ready for use.
type Queue[T any] struct {
	h   itemHeap[T]
	seq uint64
}

type item[T any] struct {
	at    float64
	seq   uint64
	value T
}

type itemHeap[T any] []item[T]

func (h itemHeap[T]) Len() int { return len(h) }
func (h itemHeap[T]) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap[T]) Push(x any)   { *h = append(*h, x.(item[T])) }
func (h *itemHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = item[T]{} // let GC reclaim the value
	*h = old[:n-1]
	return it
}

// Push schedules value at the given time.
func (q *Queue[T]) Push(at float64, value T) {
	q.seq++
	heap.Push(&q.h, item[T]{at: at, seq: q.seq, value: value})
}

// Pop removes and returns the earliest event. ok is false when the queue
// is empty.
func (q *Queue[T]) Pop() (at float64, value T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	it := heap.Pop(&q.h).(item[T])
	return it.at, it.value, true
}

// Peek returns the earliest event without removing it.
func (q *Queue[T]) Peek() (at float64, value T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.h[0].at, q.h[0].value, true
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }
