package hollow

import (
	"context"
	"testing"
	"time"

	"github.com/tetris-sched/tetris/internal/estimator"
	"github.com/tetris-sched/tetris/internal/rm"
	"github.com/tetris-sched/tetris/internal/scheduler"
)

// TestStormOverloadsAdmission points the storm at a quota-bound RM and
// checks the front door both admits and rejects under the onslaught,
// with batch round-trips measured.
func TestStormOverloadsAdmission(t *testing.T) {
	srv, err := rm.New("127.0.0.1:0", rm.Config{
		Scheduler: scheduler.NewTetris(scheduler.DefaultTetrisConfig()),
		Estimator: estimator.New(),
		Admission: &rm.AdmissionConfig{
			Defaults:      rm.TenantLimits{MaxQueuedJobs: 5},
			ShedHighWater: 200,
			ShedLimit:     400,
			RetryAfter:    10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := RunStorm(context.Background(), StormConfig{
		RMAddr:      srv.Addr(),
		Tenants:     10_000,
		HotTenants:  4,
		HotFraction: 0.7,
		Workers:     4,
		Batch:       8,
		Duration:    400 * time.Millisecond,
		Seed:        7,
	})
	if rep.Batches == 0 || rep.Attempts == 0 {
		t.Fatalf("storm sent nothing: %+v", rep)
	}
	if rep.Admitted == 0 {
		t.Errorf("nothing admitted: %+v", rep)
	}
	if rep.Rejected == 0 {
		t.Errorf("nothing rejected — the storm is not overloading: %+v", rep)
	}
	if rep.Quota == 0 {
		t.Errorf("hot tenants never hit the queued-job quota: %+v", rep)
	}
	if rep.Admitted+rep.Rejected > rep.Attempts {
		t.Errorf("verdicts exceed attempts: %+v", rep)
	}
	if rep.SubmitP99 <= 0 || rep.SubmitP50 > rep.SubmitP99 {
		t.Errorf("batch RTT quantiles malformed: p50=%v p99=%v", rep.SubmitP50, rep.SubmitP99)
	}
}
