package hollow

import (
	"context"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/wire"
	"github.com/tetris-sched/tetris/internal/workload"
)

// AMConfig parameterizes a hollow job-manager pool: many jobs driven by
// few goroutines, each multiplexing its jobs' submissions and progress
// polls over one RM connection.
type AMConfig struct {
	// RMAddr is the resource manager's address (required).
	RMAddr string
	// Jobs to run (required). Each job's Arrival (trace seconds) is
	// divided by TimeScale to a wall-clock submission offset.
	Jobs []*workload.Job
	// AMs is the pool size (default: one per 16 jobs, at least 1).
	AMs int
	// Poll is the per-job progress poll interval (default 500ms).
	Poll time.Duration
	// TimeScale divides trace arrival seconds into wall seconds, the
	// same role as NM time compression (default 50).
	TimeScale float64
	// Tenant names the submitting principal stamped on every submission
	// for the RM's admission gate. Empty means the anonymous tenant.
	Tenant string
	// Codec selects the wire encoding for RM traffic (DESIGN.md §15).
	Codec wire.Codec
	// Seed drives reconnect jitter (default 1).
	Seed int64
	// Logger for diagnostics; nil discards.
	Logger *log.Logger
}

// AMReport is the pool's outcome.
type AMReport struct {
	Submitted int
	Finished  int
	Failed    int // jobs the RM abandoned (attempt cap exhausted) or rejected outright
	Throttled int // transient admission rejections honored with a later retry
	Polls     uint64
}

// amJob is one job's lifecycle state inside a pool worker.
type amJob struct {
	job       *workload.Job
	submitAt  time.Duration
	retryAt   time.Duration // earliest resubmit after an admission throttle
	submitted bool
	done      bool
	failed    bool
}

// RunAMs drives all jobs to completion (or ctx cancellation) and
// reports the outcome. Transport failures redial with backoff and
// resubmit outstanding jobs — the RM deduplicates identical
// definitions, so resubmission is always safe.
func RunAMs(ctx context.Context, cfg AMConfig) AMReport {
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 50
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.AMs <= 0 {
		cfg.AMs = (len(cfg.Jobs) + 15) / 16
		if cfg.AMs < 1 {
			cfg.AMs = 1
		}
	}
	if cfg.AMs > len(cfg.Jobs) {
		cfg.AMs = len(cfg.Jobs)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(discard{}, "", 0)
	}
	if len(cfg.Jobs) == 0 {
		return AMReport{}
	}

	// Shard jobs round-robin by arrival order so every worker sees a
	// similar submission timeline.
	ordered := append([]*workload.Job(nil), cfg.Jobs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	workers := make([][]*amJob, cfg.AMs)
	for i, j := range ordered {
		w := i % cfg.AMs
		workers[w] = append(workers[w], &amJob{
			job:      j,
			submitAt: time.Duration(j.Arrival / cfg.TimeScale * float64(time.Second)),
		})
	}

	var (
		mu     sync.Mutex
		report AMReport
		wg     sync.WaitGroup
	)
	start := time.Now()
	for i, jobs := range workers {
		wg.Add(1)
		go func(idx int, jobs []*amJob) {
			defer wg.Done()
			r := runAMWorker(ctx, cfg, idx, start, jobs)
			mu.Lock()
			report.Submitted += r.Submitted
			report.Finished += r.Finished
			report.Failed += r.Failed
			report.Throttled += r.Throttled
			report.Polls += r.Polls
			mu.Unlock()
		}(i, jobs)
	}
	wg.Wait()
	return report
}

// runAMWorker drives one worker's job set over one (redialed) RM
// connection until every job finishes or ctx ends.
func runAMWorker(ctx context.Context, cfg AMConfig, idx int, start time.Time, jobs []*amJob) AMReport {
	var rep AMReport
	bo := faults.NewBackoff(100*time.Millisecond, 5*time.Second, cfg.Seed+int64(idx)+1)
	framer := wire.NewFramer(cfg.Codec)
	var conn net.Conn
	var unarm func() bool // releases the ctx-cancel deadline on the live conn
	closeConn := func() {
		if conn != nil {
			unarm()
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	redial := func() bool {
		closeConn()
		for ctx.Err() == nil {
			d := net.Dialer{}
			c, err := d.DialContext(ctx, "tcp", cfg.RMAddr)
			if err == nil {
				// Resubmission after a link loss: the RM may have restarted;
				// re-announce every outstanding job (dedup makes this safe).
				for _, aj := range jobs {
					if aj.submitted && !aj.done {
						aj.submitted = false
					}
				}
				conn = c
				// Unblock any in-flight Read the instant the run budget
				// expires — without this the worker parks in Read until the
				// overloaded RM gets around to replying.
				unarm = context.AfterFunc(ctx, func() { c.SetDeadline(time.Now()) })
				bo.Reset()
				return true
			}
			select {
			case <-ctx.Done():
				return false
			case <-time.After(bo.Next()):
			}
		}
		return false
	}
	call := func(m *wire.Message) (*wire.Message, bool) {
		for ctx.Err() == nil {
			if conn == nil && !redial() {
				return nil, false
			}
			if err := framer.Write(conn, m); err == nil {
				if reply, err := framer.Read(conn); err == nil {
					return reply, true
				}
			}
			if ctx.Err() != nil {
				return nil, false
			}
			closeConn()
		}
		return nil, false
	}

	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for {
		now := time.Since(start)
		outstanding := 0
		for _, aj := range jobs {
			if aj.done {
				continue
			}
			outstanding++
			if !aj.submitted && now >= aj.submitAt && now >= aj.retryAt {
				reply, ok := call(&wire.Message{Type: wire.TypeSubmitJob, SubmitJob: &wire.SubmitJob{Job: aj.job, Tenant: cfg.Tenant}})
				if !ok {
					return rep
				}
				if reply.Type == wire.TypeError {
					cfg.Logger.Printf("hollow: am %d: job %d rejected: %s", idx, aj.job.ID, reply.Error)
					aj.done, aj.failed = true, true
					rep.Failed++
					continue
				}
				if rej := reply.SubmitReject; reply.Type == wire.TypeSubmitReject && rej != nil {
					if rej.RetryAfter <= 0 {
						cfg.Logger.Printf("hollow: am %d: job %d rejected (%s): %s", idx, aj.job.ID, rej.Code, rej.Reason)
						aj.done, aj.failed = true, true
						rep.Failed++
						continue
					}
					// Transient admission throttle: honor the RM's hint
					// and retry on a later pass.
					aj.retryAt = now + time.Duration(rej.RetryAfter*float64(time.Second))
					rep.Throttled++
					continue
				}
				aj.submitted = true
				rep.Submitted++
			}
			if !aj.submitted {
				continue
			}
			reply, ok := call(&wire.Message{Type: wire.TypeAMHeartbeat, AMHeartbeat: &wire.AMHeartbeat{JobID: aj.job.ID}})
			if !ok {
				return rep
			}
			rep.Polls++
			if reply.Type == wire.TypeError {
				// E.g. a restarted RM that lost the job; resubmit next pass.
				aj.submitted = false
				continue
			}
			if r := reply.AMReply; r != nil && r.Finished {
				aj.done = true
				if r.Failed {
					aj.failed = true
					rep.Failed++
				} else {
					rep.Finished++
				}
			}
		}
		if outstanding == 0 {
			return rep
		}
		select {
		case <-ctx.Done():
			return rep
		case <-ticker.C:
		}
	}
}
