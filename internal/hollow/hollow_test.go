package hollow

import (
	"context"
	"testing"
	"time"

	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/rm"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/wire"
	"github.com/tetris-sched/tetris/internal/workload"
)

// mkChurnPlan crashes machines 2 and 7 at 0.5s and recovers them at
// 1.5s — both windows comfortably longer than the RM's NodeTimeout so
// the detector confirms each death before the node returns.
func mkChurnPlan() *faults.Plan {
	return &faults.Plan{Events: []faults.Event{
		{Time: 0.5, Kind: faults.MachineCrash, Machine: 2},
		{Time: 0.5, Kind: faults.MachineCrash, Machine: 7},
		{Time: 1.5, Kind: faults.MachineRecover, Machine: 2},
		{Time: 1.5, Kind: faults.MachineRecover, Machine: 7},
	}}
}

func mkJob(id, nTasks int, cores, mem, durSec float64) *workload.Job {
	j := &workload.Job{ID: id, Weight: 1}
	st := &workload.Stage{Name: "map"}
	for i := 0; i < nTasks; i++ {
		st.Tasks = append(st.Tasks, &workload.Task{
			ID:   workload.TaskID{Job: id, Stage: 0, Index: i},
			Peak: resources.New(cores, mem, 0, 0, 0, 0),
			Work: workload.Work{CPUSeconds: cores * durSec},
		})
	}
	j.Stages = []*workload.Stage{st}
	return j
}

// TestHollowFleetEndToEnd runs a small fleet plus a hollow AM pool
// against a real RM in-process: jobs must finish through synthetic
// task execution, delta heartbeats must compress the steady state, and
// the RM's ledger must balance afterwards.
func TestHollowFleetEndToEnd(t *testing.T) {
	srv, err := rm.New("127.0.0.1:0", rm.Config{
		Scheduler: scheduler.NewTetris(scheduler.DefaultTetrisConfig()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	fleet, err := New(Config{
		RMAddr:          srv.Addr(),
		Nodes:           40,
		Conns:           3,
		Heartbeat:       25 * time.Millisecond,
		Compression:     50,
		Seed:            7,
		DeltaHeartbeats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleetCtx, stopFleet := context.WithCancel(ctx)
	fleetDone := make(chan struct{})
	go func() {
		defer close(fleetDone)
		fleet.Run(fleetCtx)
	}()

	jobs := []*workload.Job{
		mkJob(1, 30, 2, 4, 20),
		mkJob(2, 20, 4, 8, 30),
		mkJob(3, 10, 1, 2, 10),
	}
	rep := RunAMs(ctx, AMConfig{
		RMAddr:    srv.Addr(),
		Jobs:      jobs,
		AMs:       3,
		Poll:      30 * time.Millisecond,
		TimeScale: 50,
		Seed:      7,
	})
	stopFleet()
	<-fleetDone

	if rep.Finished != len(jobs) || rep.Failed != 0 {
		t.Fatalf("AM pool: %d finished, %d failed, want %d finished (report %+v)",
			rep.Finished, rep.Failed, len(jobs), rep)
	}
	fr := fleet.Report()
	if fr.Registers < 40 {
		t.Errorf("Registers = %d, want >= 40 (every node once)", fr.Registers)
	}
	if fr.Beats == 0 || fr.RTTSamples == 0 {
		t.Errorf("no heartbeats measured: %+v", fr)
	}
	if fr.DeltaBeats == 0 {
		t.Errorf("delta heartbeats enabled but none compressed: %+v", fr)
	}
	wantTasks := uint64(60)
	if fr.TasksCompleted < wantTasks {
		t.Errorf("TasksCompleted = %d, want %d", fr.TasksCompleted, wantTasks)
	}
	if fr.BytesSent == 0 || fr.BytesRecv == 0 {
		t.Errorf("wire byte counters empty: %+v", fr)
	}
	if fr.RTTp50 <= 0 || fr.RTTp99 < fr.RTTp50 {
		t.Errorf("RTT quantiles inconsistent: p50=%v p99=%v", fr.RTTp50, fr.RTTp99)
	}
	if err := srv.VerifyLedger(); err != nil {
		t.Errorf("ledger after hollow run: %v", err)
	}
}

// TestHollowBinaryBatchedFleet runs the fleet in its scale
// configuration — binary codec, batched heartbeats, delta reports —
// against a real RM, with planned churn so batch replies carry
// per-node "unregistered node" errors mid-run (the crashed nodes must
// re-register through the batched path). Jobs still finish and the
// ledger still balances, demonstrating batching changes framing only,
// not semantics.
func TestHollowBinaryBatchedFleet(t *testing.T) {
	srv, err := rm.New("127.0.0.1:0", rm.Config{
		Scheduler:   scheduler.NewTetris(scheduler.DefaultTetrisConfig()),
		NodeTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	fleet, err := New(Config{
		RMAddr:          srv.Addr(),
		Nodes:           40,
		Conns:           3,
		Heartbeat:       25 * time.Millisecond,
		Compression:     50,
		Seed:            11,
		DeltaHeartbeats: true,
		Codec:           wire.CodecBinary,
		Batch:           8,
		Plan:            mkChurnPlan(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fleetCtx, stopFleet := context.WithCancel(ctx)
	fleetDone := make(chan struct{})
	go func() {
		defer close(fleetDone)
		fleet.Run(fleetCtx)
	}()

	jobs := []*workload.Job{
		mkJob(1, 30, 2, 4, 20),
		mkJob(2, 20, 4, 8, 30),
		mkJob(3, 10, 1, 2, 10),
	}
	rep := RunAMs(ctx, AMConfig{
		RMAddr:    srv.Addr(),
		Jobs:      jobs,
		AMs:       3,
		Poll:      30 * time.Millisecond,
		TimeScale: 50,
		Seed:      11,
		Codec:     wire.CodecBinary,
	})
	// Jobs can drain before the churn windows close; keep the fleet up
	// until the crashed nodes have re-registered through the batched
	// path and the RM sees the full fleet live again.
	deadline := time.Now().Add(20 * time.Second)
	for {
		fr := fleet.Report()
		if fr.Crashes >= 2 && fr.Registers >= 42 && srv.LiveNodes() == 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("fleet did not reconverge: report %+v, live %d", fr, srv.LiveNodes())
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	stopFleet()
	<-fleetDone

	if rep.Finished != len(jobs) || rep.Failed != 0 {
		t.Fatalf("AM pool: %d finished, %d failed, want %d finished (report %+v)",
			rep.Finished, rep.Failed, len(jobs), rep)
	}
	fr := fleet.Report()
	if fr.Registers < 42 {
		t.Errorf("Registers = %d, want >= 42 (every node once + crashed nodes again)", fr.Registers)
	}
	if fr.Crashes < 2 {
		t.Errorf("Crashes = %d, want >= 2 (planned windows entered)", fr.Crashes)
	}
	if fr.Beats == 0 || fr.RTTSamples == 0 {
		t.Errorf("no heartbeats measured: %+v", fr)
	}
	if fr.DeltaBeats == 0 {
		t.Errorf("delta heartbeats enabled but none compressed through batches: %+v", fr)
	}
	if fr.TasksCompleted < 60 {
		t.Errorf("TasksCompleted = %d, want >= 60", fr.TasksCompleted)
	}
	if err := srv.VerifyLedger(); err != nil {
		t.Errorf("ledger after binary batched run: %v", err)
	}
}

// TestHollowChurn lets the RM's failure detector kill planned-crash
// nodes and verifies they re-register after their windows and that the
// cluster converges back to fully live.
func TestHollowChurn(t *testing.T) {
	srv, err := rm.New("127.0.0.1:0", rm.Config{
		Scheduler:   scheduler.NewTetris(scheduler.DefaultTetrisConfig()),
		NodeTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	plan := mkChurnPlan()
	fleet, err := New(Config{
		RMAddr:          srv.Addr(),
		Nodes:           12,
		Conns:           2,
		Heartbeat:       25 * time.Millisecond,
		Seed:            3,
		DeltaHeartbeats: true,
		Plan:            plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleetCtx, stopFleet := context.WithCancel(ctx)
	fleetDone := make(chan struct{})
	go func() {
		defer close(fleetDone)
		fleet.Run(fleetCtx)
	}()

	deadline := time.Now().Add(20 * time.Second)
	for {
		fr := fleet.Report()
		if fr.Crashes >= 2 && fr.Registers >= 14 && srv.LiveNodes() == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not converge: report %+v, live %d", fr, srv.LiveNodes())
		}
		time.Sleep(50 * time.Millisecond)
	}
	stopFleet()
	<-fleetDone
	if err := srv.VerifyLedger(); err != nil {
		t.Errorf("ledger after churn: %v", err)
	}
}
