package hollow

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/wire"
	"github.com/tetris-sched/tetris/internal/workload"
)

// StormConfig parameterizes a submission storm: a fleet of synthetic
// tenants pushing batched job submissions at the RM far beyond its
// admission capacity, to exercise quotas, rate limits, and load
// shedding. The storm is the adversarial counterpart of the hollow AM
// pool — it does not wait for its jobs; it only measures the front
// door.
type StormConfig struct {
	// RMAddr is the resource manager's address (required).
	RMAddr string
	// Tenants is the tenant-id universe the storm draws from (default
	// 1e6). Tenant names are "t<number>".
	Tenants int
	// HotTenants is the size of the hot set hit disproportionately
	// often, so per-tenant quotas and rate limits actually trip while
	// the long tail exercises lazy tenant creation (default 64).
	HotTenants int
	// HotFraction is the probability a batch is submitted by a hot
	// tenant (default 0.5).
	HotFraction float64
	// Workers is the number of concurrent submitting connections
	// (default 8).
	Workers int
	// Batch is the number of jobs per submit-batch frame (default 16).
	Batch int
	// Rate caps total submitted jobs/sec across all workers; 0 means
	// unthrottled — submit as fast as the RM acks.
	Rate float64
	// TasksPerJob sizes each synthetic job (default 2).
	TasksPerJob int
	// Duration bounds the storm (required unless ctx is bounded).
	Duration time.Duration
	// BaseJobID starts the storm's job-id space, kept disjoint from any
	// concurrently running AM fleet's ids.
	BaseJobID int
	// Seed drives tenant choice and backoff jitter (default 1).
	Seed int64
	// Logger for diagnostics; nil discards.
	Logger *log.Logger
}

// StormReport is the storm's outcome, bucketed by admission verdict.
type StormReport struct {
	Attempts    int // jobs offered to the RM
	Admitted    int
	Rejected    int // all rejections
	RateLimited int
	Quota       int // quota-jobs + quota-demand
	Shed        int
	Conflict    int
	Invalid     int
	Errors      int // transport failures (batch outcome unknown)
	Batches     int
	SubmitP50   float64 // seconds per batch round-trip
	SubmitP99   float64
	Wall        time.Duration
}

// RunStorm drives the submission storm until Duration elapses or ctx
// ends, and reports what the RM's front door did with it.
func RunStorm(ctx context.Context, cfg StormConfig) StormReport {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1_000_000
	}
	if cfg.HotTenants <= 0 {
		cfg.HotTenants = 64
	}
	if cfg.HotTenants > cfg.Tenants {
		cfg.HotTenants = cfg.Tenants
	}
	if cfg.HotFraction <= 0 || cfg.HotFraction > 1 {
		cfg.HotFraction = 0.5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.TasksPerJob <= 0 {
		cfg.TasksPerJob = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(discard{}, "", 0)
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var (
		nextID atomic.Int64
		rtts   = newReservoir(8192, cfg.Seed)
		mu     sync.Mutex
		rep    StormReport
		wg     sync.WaitGroup
	)
	nextID.Store(int64(cfg.BaseJobID))
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r := runStormWorker(ctx, cfg, idx, &nextID, rtts)
			mu.Lock()
			rep.Attempts += r.Attempts
			rep.Admitted += r.Admitted
			rep.Rejected += r.Rejected
			rep.RateLimited += r.RateLimited
			rep.Quota += r.Quota
			rep.Shed += r.Shed
			rep.Conflict += r.Conflict
			rep.Invalid += r.Invalid
			rep.Errors += r.Errors
			rep.Batches += r.Batches
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	rep.SubmitP50 = rtts.quantile(0.50)
	rep.SubmitP99 = rtts.quantile(0.99)
	return rep
}

// runStormWorker pushes batches over one redialed connection.
func runStormWorker(ctx context.Context, cfg StormConfig, idx int, nextID *atomic.Int64, rtts *reservoir) StormReport {
	var rep StormReport
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
	bo := faults.NewBackoff(50*time.Millisecond, 2*time.Second, cfg.Seed+int64(idx)+1)
	// Pace each worker to its share of the global job rate.
	var pace time.Duration
	if cfg.Rate > 0 {
		pace = time.Duration(float64(cfg.Batch) * float64(cfg.Workers) / cfg.Rate * float64(time.Second))
	}
	var conn net.Conn
	var unarm func() bool // releases the ctx-cancel deadline on the live conn
	closeConn := func() {
		if conn != nil {
			unarm()
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	for ctx.Err() == nil {
		if conn == nil {
			d := net.Dialer{}
			c, err := d.DialContext(ctx, "tcp", cfg.RMAddr)
			if err != nil {
				select {
				case <-ctx.Done():
				case <-time.After(bo.Next()):
				}
				continue
			}
			conn = c
			// Unblock any in-flight Read the instant the storm budget
			// expires; an overloaded RM can take arbitrarily long to reply.
			unarm = context.AfterFunc(ctx, func() { c.SetDeadline(time.Now()) })
			bo.Reset()
		}
		tenant := stormTenant(rng, cfg)
		batch := &wire.SubmitBatch{Tenant: tenant, Jobs: make([]*workload.Job, 0, cfg.Batch)}
		for i := 0; i < cfg.Batch; i++ {
			batch.Jobs = append(batch.Jobs, stormJob(int(nextID.Add(1)-1), cfg.TasksPerJob))
		}
		rep.Attempts += len(batch.Jobs)
		t0 := time.Now()
		err := wire.Write(conn, &wire.Message{Type: wire.TypeSubmitBatch, SubmitBatch: batch})
		var reply *wire.Message
		if err == nil {
			reply, err = wire.Read(conn)
		}
		if err != nil {
			// The RM may have been killed mid-batch (chaos runs do this on
			// purpose): the batch's fate is unknown until the journal
			// replays. Count it and redial.
			rep.Errors++
			closeConn()
			continue
		}
		rtts.observe(time.Since(t0).Seconds())
		rep.Batches++
		if reply.Type != wire.TypeSubmitBatchReply || reply.SubmitBatchReply == nil {
			cfg.Logger.Printf("hollow: storm %d: unexpected reply %q: %s", idx, reply.Type, reply.Error)
			rep.Errors++
			continue
		}
		for _, res := range reply.SubmitBatchReply.Results {
			if res.Reject == nil {
				rep.Admitted++
				continue
			}
			rep.Rejected++
			switch res.Reject.Code {
			case wire.RejectRateLimited:
				rep.RateLimited++
			case wire.RejectQuotaJobs, wire.RejectQuotaDemand:
				rep.Quota++
			case wire.RejectShed:
				rep.Shed++
			case wire.RejectConflict:
				rep.Conflict++
			case wire.RejectInvalid:
				rep.Invalid++
			}
		}
		if pace > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(pace):
			}
		}
	}
	return rep
}

// stormTenant draws a tenant name: usually from the small hot set,
// otherwise uniformly from the full universe.
func stormTenant(rng *rand.Rand, cfg StormConfig) string {
	if rng.Float64() < cfg.HotFraction {
		return fmt.Sprintf("t%d", rng.Intn(cfg.HotTenants))
	}
	return fmt.Sprintf("t%d", rng.Intn(cfg.Tenants))
}

// stormJob builds a minimal valid single-stage job.
func stormJob(id, tasks int) *workload.Job {
	st := &workload.Stage{Name: "s"}
	for i := 0; i < tasks; i++ {
		st.Tasks = append(st.Tasks, &workload.Task{
			ID:   workload.TaskID{Job: id, Stage: 0, Index: i},
			Peak: resources.New(1, 1, 0, 0, 0, 0),
			Work: workload.Work{CPUSeconds: 5},
		})
	}
	return &workload.Job{ID: id, Name: "storm", Weight: 1, Stages: []*workload.Stage{st}}
}
