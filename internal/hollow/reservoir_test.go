package hollow

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference the reservoir is judged against: the
// same lower-rounding nearest-rank convention quantile() uses, applied
// to the full observation stream.
func exactQuantile(values []float64, q float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func TestReservoirEmpty(t *testing.T) {
	r := newReservoir(16, 1)
	if got := r.quantile(0.5); got != 0 {
		t.Errorf("empty reservoir quantile = %v, want 0", got)
	}
	if got := r.count(); got != 0 {
		t.Errorf("empty reservoir count = %d, want 0", got)
	}
}

// TestReservoirExactBelowCapacity: while the stream is smaller than the
// reservoir, nothing is sampled away, so every quantile must equal the
// exact quantile of the observed values — regardless of arrival order.
func TestReservoirExactBelowCapacity(t *testing.T) {
	const capacity = 256
	rng := rand.New(rand.NewSource(7))
	r := newReservoir(capacity, 7)
	var stream []float64
	for i := 0; i < capacity-13; i++ {
		v := rng.Float64() * 100
		stream = append(stream, v)
		r.observe(v)
	}
	if got := r.count(); got != int64(len(stream)) {
		t.Fatalf("count = %d, want %d", got, len(stream))
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		want := exactQuantile(stream, q)
		if got := r.quantile(q); got != want {
			t.Errorf("q=%.2f: reservoir %v, exact %v", q, got, want)
		}
	}
}

// TestReservoirApproximatesLargeStream: once the stream far exceeds
// capacity, algorithm R keeps a uniform sample, so quantile estimates
// must land near the exact stream quantiles. Uniform input makes the
// error bound easy to state: the standard error of the q-quantile
// estimate from k samples is ~sqrt(q(1-q)/k)·range; 5× that is a
// comfortably deterministic margin for a fixed seed.
func TestReservoirApproximatesLargeStream(t *testing.T) {
	const (
		capacity = 1024
		n        = 100_000
		scale    = 1000.0
	)
	rng := rand.New(rand.NewSource(11))
	r := newReservoir(capacity, 11)
	stream := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := rng.Float64() * scale
		stream = append(stream, v)
		r.observe(v)
	}
	if got := r.count(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := exactQuantile(stream, q)
		got := r.quantile(q)
		tol := 5 * scale * math.Sqrt(q*(1-q)/capacity)
		if diff := got - want; diff < -tol || diff > tol {
			t.Errorf("q=%.2f: reservoir %v, exact %v (|diff| %v > tol %v)",
				q, got, want, diff, tol)
		}
	}
}

// TestReservoirBoundedMemory: the sample never outgrows its capacity no
// matter how long the stream runs.
func TestReservoirBoundedMemory(t *testing.T) {
	const capacity = 64
	r := newReservoir(capacity, 3)
	for i := 0; i < 10*capacity; i++ {
		r.observe(float64(i))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) != capacity {
		t.Fatalf("len(samples) = %d, want %d", len(r.samples), capacity)
	}
}
