// Package hollow implements a Kubemark-style hollow-node fleet: it
// multiplexes thousands of protocol-faithful node managers — and, via
// RunAMs, hundreds of job managers — from one process against a real
// resource manager, so scheduler-side scale limits can be measured
// without a cluster. Hollow nodes speak the exact internal/wire
// protocol (register, heartbeat, delta availability reports, resync
// re-registration) but execute tasks synthetically: a launched task is
// a due-time entry drained at heartbeat time, not a goroutine holding
// resources through sleeps, so a fleet's cost is per-beat, not
// per-task, and 10k nodes fit in one process.
//
// Fidelity boundaries (see DESIGN.md §11): task completions quantize
// to the heartbeat interval, usage reports jump to the task's declared
// peak instantly (no tracker ramp), and token-bucket enforcement is
// skipped — the RM-facing control plane is real, the node-local data
// plane is not.
package hollow

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/wire"
	"github.com/tetris-sched/tetris/internal/workload"
)

// Config parameterizes a hollow-node fleet.
type Config struct {
	// RMAddr is the resource manager's address (required).
	RMAddr string
	// Nodes is the fleet size (required).
	Nodes int
	// Conns is the number of TCP connections the fleet multiplexes its
	// nodes over (default: one per 512 nodes, at least 1). The RM keys
	// every frame on the NodeID in its payload, so nodes sharing a
	// connection are indistinguishable from nodes with their own.
	Conns int
	// Capacity is each hollow node's machine capacity (default the
	// 16-core reference machine used across the test suite).
	Capacity resources.Vector
	// Heartbeat is the per-node heartbeat interval (default 1s — a
	// realistic cluster cadence; the loopback tests' 50ms would melt a
	// single-process 10k-node fleet).
	Heartbeat time.Duration
	// Compression divides task durations, exactly like a real NM's
	// time compression (default 50).
	Compression float64
	// Seed drives the fleet's determinism: beat-order stagger, reconnect
	// jitter, and RTT sampling (default 1).
	Seed int64
	// DeltaHeartbeats sends delta availability reports (wire.DeltaTracker)
	// when a node's usage is unchanged since its last acked beat.
	DeltaHeartbeats bool
	// Codec selects the wire encoding for fleet traffic: wire.CodecJSON
	// (the default) speaks legacy v0 frames, wire.CodecBinary speaks v1
	// zero-copy binary frames (DESIGN.md §15). The RM replies in kind.
	Codec wire.Codec
	// Batch coalesces up to this many nodes' heartbeats into one
	// TypeHeartbeatBatch frame per shared connection. Each node still
	// beats once per Heartbeat — the tick stretches by the batch factor —
	// and the reply carries one entry per beat, so per-node ack semantics
	// (DeltaTracker baseline advance) are unchanged. 0 or 1 sends
	// individual heartbeat frames, the pre-batching behavior.
	Batch int
	// Plan optionally injects node churn: MachineCrash/MachineRecover
	// events (times in wall seconds from Run) silence a node past the
	// RM's failure detector and then re-register it empty, exercising
	// dead-node reclaim at scale. Slowdown and straggler fields are
	// ignored — hollow nodes have no rates to degrade.
	Plan *faults.Plan
	// Logger for diagnostics; nil discards.
	Logger *log.Logger
}

// Report is a fleet's cumulative measurement snapshot, safe to read
// while the fleet runs.
type Report struct {
	Beats          uint64 // heartbeats exchanged (excludes registrations)
	DeltaBeats     uint64 // heartbeats sent as delta reports
	FullRequested  uint64 // replies carrying NMReply.FullReport
	Registers      uint64 // successful (re)registrations
	Redials        uint64 // connection-level failures survived
	Crashes        uint64 // plan-injected node crash windows entered
	TasksLaunched  uint64
	TasksCompleted uint64
	TasksKilled    uint64 // orphans killed on RM instruction
	TasksPreempted uint64 // attempts killed by gang preemption
	BytesSent      uint64 // NM-side wire bytes written, all connections
	BytesRecv      uint64 // NM-side wire bytes read, all connections
	RTTSamples     int64  // heartbeat round-trips measured
	RTTp50         float64
	RTTp99         float64
}

// window is one planned down interval, as offsets from fleet start.
type window struct{ from, to time.Duration }

// node is one hollow node manager's state. Owned by its shard
// goroutine; no locking needed.
type node struct {
	id         int
	capacity   resources.Vector
	delta      wire.DeltaTracker
	registered bool
	used       resources.Vector
	running    map[workload.TaskID]runningTask
	completed  []wire.TaskCompletion // buffered until deliverable
	windows    []window              // pending crash windows, time order
	down       bool
}

type runningTask struct {
	launch wire.TaskLaunch
	due    time.Time
}

// shard owns a subset of the fleet's nodes and one connection.
type shard struct {
	f      *Fleet
	nodes  []*node
	rng    *rand.Rand
	cursor int

	// Reused across batched ticks so steady-state batching does not
	// allocate per frame.
	batchBeats []wire.NMHeartbeat
	batchNodes []*node
}

// Fleet is a hollow-node fleet. Create with New, drive with Run.
type Fleet struct {
	cfg    Config
	log    *log.Logger
	shards []*shard
	start  time.Time

	beats          atomic.Uint64
	deltaBeats     atomic.Uint64
	fullRequested  atomic.Uint64
	registers      atomic.Uint64
	redials        atomic.Uint64
	crashes        atomic.Uint64
	tasksLaunched  atomic.Uint64
	tasksCompleted atomic.Uint64
	tasksKilled    atomic.Uint64
	tasksPreempted atomic.Uint64
	bytesSent      atomic.Uint64
	bytesRecv      atomic.Uint64
	rtt            *reservoir
}

// New builds a fleet (not yet connected; call Run).
func New(cfg Config) (*Fleet, error) {
	if cfg.RMAddr == "" {
		return nil, fmt.Errorf("hollow: RMAddr is required")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("hollow: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Conns <= 0 {
		cfg.Conns = (cfg.Nodes + 511) / 512
	}
	if cfg.Conns > cfg.Nodes {
		cfg.Conns = cfg.Nodes
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Compression == 0 {
		cfg.Compression = 50
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Batch < 0 {
		cfg.Batch = 0
	}
	if cfg.Capacity == (resources.Vector{}) {
		cfg.Capacity = resources.New(16, 32, 200, 200, 1000, 1000)
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(discard{}, "", 0)
	}
	f := &Fleet{
		cfg: cfg,
		log: cfg.Logger,
		rtt: newReservoir(8192, cfg.Seed),
	}
	windows := crashWindows(cfg.Plan)
	nodes := make([]*node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &node{
			id:       i,
			capacity: cfg.Capacity,
			running:  make(map[workload.TaskID]runningTask),
			windows:  windows[i],
		}
	}
	// Shard nodes round-robin, then shuffle each shard's beat order with
	// the fleet seed: the stagger pattern is deterministic per seed but
	// not aligned with node IDs, so churn windows (planned by ID) don't
	// all land on the same connection phase.
	f.shards = make([]*shard, cfg.Conns)
	for i := range f.shards {
		f.shards[i] = &shard{f: f, rng: rand.New(rand.NewSource(cfg.Seed + int64(i)))}
	}
	for i, n := range nodes {
		sh := f.shards[i%cfg.Conns]
		sh.nodes = append(sh.nodes, n)
	}
	for _, sh := range f.shards {
		sh.rng.Shuffle(len(sh.nodes), func(i, j int) {
			sh.nodes[i], sh.nodes[j] = sh.nodes[j], sh.nodes[i]
		})
	}
	return f, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// crashWindows extracts per-machine down intervals from a fault plan.
// An unmatched crash stays down forever.
func crashWindows(p *faults.Plan) map[int][]window {
	out := make(map[int][]window)
	if p == nil {
		return out
	}
	open := make(map[int]time.Duration)
	for _, e := range p.Events {
		switch e.Kind {
		case faults.MachineCrash:
			open[e.Machine] = time.Duration(e.Time * float64(time.Second))
		case faults.MachineRecover:
			if from, ok := open[e.Machine]; ok {
				out[e.Machine] = append(out[e.Machine], window{from, time.Duration(e.Time * float64(time.Second))})
				delete(open, e.Machine)
			}
		}
	}
	for m, from := range open {
		out[m] = append(out[m], window{from, time.Duration(math.MaxInt64)})
	}
	for _, ws := range out {
		sort.Slice(ws, func(i, j int) bool { return ws[i].from < ws[j].from })
	}
	return out
}

// Run connects the fleet and beats until ctx is canceled. Connection
// failures redial with backoff; the error is only ever ctx's.
func (f *Fleet) Run(ctx context.Context) error {
	f.start = time.Now()
	var wg sync.WaitGroup
	for i, sh := range f.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.run(ctx, i)
		}(i, sh)
	}
	wg.Wait()
	return ctx.Err()
}

// Report snapshots the fleet's counters.
func (f *Fleet) Report() Report {
	return Report{
		Beats:          f.beats.Load(),
		DeltaBeats:     f.deltaBeats.Load(),
		FullRequested:  f.fullRequested.Load(),
		Registers:      f.registers.Load(),
		Redials:        f.redials.Load(),
		Crashes:        f.crashes.Load(),
		TasksLaunched:  f.tasksLaunched.Load(),
		TasksCompleted: f.tasksCompleted.Load(),
		TasksKilled:    f.tasksKilled.Load(),
		TasksPreempted: f.tasksPreempted.Load(),
		BytesSent:      f.bytesSent.Load(),
		BytesRecv:      f.bytesRecv.Load(),
		RTTSamples:     f.rtt.count(),
		RTTp50:         f.rtt.quantile(0.50),
		RTTp99:         f.rtt.quantile(0.99),
	}
}

// run is one shard's lifetime: sessions separated by backoff. A session
// ends only on transport failure (or ctx); every node on the shard then
// re-registers, flowing through the RM's resync reconciliation exactly
// like a real NM surviving a link blip.
func (sh *shard) run(ctx context.Context, idx int) {
	bo := faults.NewBackoff(50*time.Millisecond, 2*time.Second, sh.f.cfg.Seed+int64(idx)+1)
	for ctx.Err() == nil {
		worked, err := sh.session(ctx)
		if ctx.Err() != nil {
			return
		}
		sh.f.redials.Add(1)
		sh.f.log.Printf("hollow: shard %d link lost (%v), redialing", idx, err)
		for _, n := range sh.nodes {
			n.registered = false
			n.delta.Reset()
		}
		if worked {
			bo.Reset()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(bo.Next()):
		}
	}
}

// session dials one connection and beats the shard's nodes round-robin,
// pacing so every node beats once per Heartbeat. worked reports whether
// at least one exchange succeeded (refreshing the redial budget).
func (sh *shard) session(ctx context.Context) (worked bool, err error) {
	d := net.Dialer{}
	raw, err := d.DialContext(ctx, "tcp", sh.f.cfg.RMAddr)
	if err != nil {
		return false, err
	}
	conn := &countingConn{Conn: raw, sent: &sh.f.bytesSent, recv: &sh.f.bytesRecv}
	defer raw.Close()
	stop := context.AfterFunc(ctx, func() { raw.SetDeadline(time.Now()) })
	defer stop()

	// One framer per session owns the frame buffers and decode scratch,
	// so steady-state beats allocate nothing on the fleet side either.
	framer := wire.NewFramer(sh.f.cfg.Codec)

	// Each tick advances batch-many nodes (one, unbatched), so every
	// node still beats once per Heartbeat: the tick stretches by the
	// batch factor instead of the frame rate multiplying.
	batch := sh.f.cfg.Batch
	if batch > len(sh.nodes) {
		batch = len(sh.nodes)
	}
	if batch < 1 {
		batch = 1
	}
	per := sh.f.cfg.Heartbeat * time.Duration(batch) / time.Duration(len(sh.nodes))
	if per < 50*time.Microsecond {
		per = 50 * time.Microsecond
	}
	ticker := time.NewTicker(per)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return worked, ctx.Err()
		case <-ticker.C:
		}
		if batch > 1 {
			if err := sh.beatBatch(conn, framer, batch); err != nil {
				return worked, err
			}
		} else {
			n := sh.nodes[sh.cursor]
			sh.cursor = (sh.cursor + 1) % len(sh.nodes)
			if err := sh.beat(conn, framer, n); err != nil {
				return worked, err
			}
		}
		worked = true
	}
}

// churn applies any planned crash window to the node; true means the
// node is silent this slot. Inside a window the node says nothing (the
// RM's failure detector will declare it dead); entering one loses all
// node state, like a machine power cycle.
func (sh *shard) churn(n *node, since time.Duration) bool {
	for len(n.windows) > 0 && since >= n.windows[0].to {
		n.windows = n.windows[1:]
		n.down = false
	}
	if len(n.windows) > 0 && since >= n.windows[0].from {
		if !n.down {
			n.down = true
			n.registered = false
			n.used = resources.Vector{}
			n.running = make(map[workload.TaskID]runningTask)
			n.completed = nil
			n.delta.Reset()
			sh.f.crashes.Add(1)
		}
		return true
	}
	return false
}

// prepareBeat builds the node's next heartbeat: synthetic execution
// drains due tasks in deterministic ID order, then the delta tracker
// compresses the availability report when eligible. The returned beat's
// Completed slice must be requeued if the exchange fails.
func (sh *shard) prepareBeat(n *node, now time.Time) wire.NMHeartbeat {
	n.drainDue(now, &sh.f.tasksCompleted)
	hb := wire.NMHeartbeat{
		NodeID:    n.id,
		Used:      n.used,
		Allocated: n.used,
		Completed: n.completed,
	}
	n.completed = nil
	if sh.f.cfg.DeltaHeartbeats {
		if full := n.delta.Mark(&hb); !full {
			sh.f.deltaBeats.Add(1)
		}
	}
	return hb
}

// applyReply applies a successful heartbeat reply's instructions to the
// node: delta ack, orphan kills, gang preemptions, launches.
func (sh *shard) applyReply(n *node, r *wire.NMReply, now time.Time) {
	if sh.f.cfg.DeltaHeartbeats {
		n.delta.Ack(r)
		if r != nil && r.FullReport {
			sh.f.fullRequested.Add(1)
		}
	}
	if r == nil {
		return
	}
	n.handleKills(r.Kill, &sh.f.tasksKilled)
	n.handlePreempts(r.Preempt, &sh.f.tasksPreempted)
	for _, l := range r.Launch {
		n.launch(l, now, sh.f.cfg.Compression)
		sh.f.tasksLaunched.Add(1)
	}
}

// beat advances one node by one heartbeat slot: apply any planned crash
// window, (re)register if needed, otherwise exchange one heartbeat.
// Returns transport errors only; protocol-level rejections mark the
// node for re-registration and continue.
func (sh *shard) beat(conn net.Conn, framer *wire.Framer, n *node) error {
	now := time.Now()
	if sh.churn(n, now.Sub(sh.f.start)) {
		return nil
	}
	if !n.registered {
		return sh.register(conn, framer, n)
	}

	hb := sh.prepareBeat(n, now)
	t0 := time.Now()
	if err := framer.Write(conn, &wire.Message{Type: wire.TypeNMHeartbeat, NMHeartbeat: &hb}); err != nil {
		n.requeue(hb.Completed)
		return err
	}
	reply, err := framer.Read(conn)
	if err != nil {
		n.requeue(hb.Completed)
		return err
	}
	sh.f.rtt.observe(time.Since(t0).Seconds())
	sh.f.beats.Add(1)
	if reply.Type == wire.TypeError {
		// "unregistered node" / "must re-register": the RM lost or reset
		// its view of this node; re-register on the next slot.
		n.requeue(hb.Completed)
		n.registered = false
		n.delta.Reset()
		return nil
	}
	sh.applyReply(n, reply.NMReply, now)
	return nil
}

// beatBatch advances the next batch-many nodes by one heartbeat slot,
// coalescing their heartbeats into one TypeHeartbeatBatch frame. Nodes
// in a churn window stay silent; unregistered nodes take their slot as
// an individual registration frame (rare, and its reply must land
// before the node can join a batch). The batch reply carries one entry
// per beat in beat order — exactly what each node would have received
// on its own connection — so per-node ack semantics are preserved.
func (sh *shard) beatBatch(conn net.Conn, framer *wire.Framer, batch int) error {
	now := time.Now()
	since := now.Sub(sh.f.start)
	beats := sh.batchBeats[:0]
	members := sh.batchNodes[:0]
	defer func() { sh.batchBeats, sh.batchNodes = beats[:0], members[:0] }()
	for i := 0; i < batch; i++ {
		n := sh.nodes[sh.cursor]
		sh.cursor = (sh.cursor + 1) % len(sh.nodes)
		if sh.churn(n, since) {
			continue
		}
		if !n.registered {
			if err := sh.register(conn, framer, n); err != nil {
				return err
			}
			continue
		}
		beats = append(beats, sh.prepareBeat(n, now))
		members = append(members, n)
	}
	if len(beats) == 0 {
		return nil
	}
	requeueAll := func() {
		for i, n := range members {
			n.requeue(beats[i].Completed)
		}
	}
	t0 := time.Now()
	if err := framer.Write(conn, &wire.Message{Type: wire.TypeHeartbeatBatch,
		HeartbeatBatch: &wire.HeartbeatBatch{Beats: beats}}); err != nil {
		requeueAll()
		return err
	}
	reply, err := framer.Read(conn)
	if err != nil {
		requeueAll()
		return err
	}
	sh.f.rtt.observe(time.Since(t0).Seconds())
	sh.f.beats.Add(uint64(len(beats)))
	br := reply.HeartbeatBatchReply
	if reply.Type != wire.TypeHeartbeatBatchReply || br == nil || len(br.Replies) != len(beats) {
		// A peer that answers a batch with anything but a matching batch
		// reply is not speaking the protocol; treat it like a broken
		// transport and redial.
		requeueAll()
		got := 0
		if br != nil {
			got = len(br.Replies)
		}
		return fmt.Errorf("hollow: batch reply mismatch: type %q with %d entries for %d beats",
			reply.Type, got, len(beats))
	}
	for i, n := range members {
		e := &br.Replies[i]
		if e.NodeID != n.id {
			requeueAll()
			return fmt.Errorf("hollow: batch reply entry %d is for node %d, want %d", i, e.NodeID, n.id)
		}
		if e.Error != "" {
			// Per-node protocol rejection ("unregistered node"): only this
			// node re-registers; the rest of the batch proceeds.
			n.requeue(beats[i].Completed)
			n.registered = false
			n.delta.Reset()
			continue
		}
		sh.applyReply(n, &e.Reply, now)
	}
	return nil
}

// register performs one registration exchange, carrying the node's
// running set and buffered completions for resync reconciliation.
func (sh *shard) register(conn net.Conn, framer *wire.Framer, n *node) error {
	running := make([]workload.TaskID, 0, len(n.running))
	for tid := range n.running {
		running = append(running, tid)
	}
	sort.Slice(running, func(i, j int) bool { return taskIDLess(running[i], running[j]) })
	done := n.completed
	n.completed = nil
	if err := framer.Write(conn, &wire.Message{Type: wire.TypeRegisterNM, RegisterNM: &wire.RegisterNM{
		NodeID: n.id, Capacity: n.capacity, Running: running, Completed: done,
	}}); err != nil {
		n.requeue(done)
		return err
	}
	reply, err := framer.Read(conn)
	if err != nil {
		n.requeue(done)
		return err
	}
	if reply.Type == wire.TypeError {
		// Definitive rejection; leave the node unregistered and keep
		// trying — the harness has no separate fatal path.
		sh.f.log.Printf("hollow: node %d registration rejected: %s", n.id, reply.Error)
		return nil
	}
	if reply.NMReply != nil {
		n.handleKills(reply.NMReply.Kill, &sh.f.tasksKilled)
	}
	n.registered = true
	n.delta.Reset()
	sh.f.registers.Add(1)
	return nil
}

// drainDue completes every running task whose due time passed,
// buffering completions for the next deliverable beat.
func (n *node) drainDue(now time.Time, completed *atomic.Uint64) {
	var due []workload.TaskID
	for tid, rt := range n.running {
		if !now.Before(rt.due) {
			due = append(due, tid)
		}
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, j int) bool { return taskIDLess(due[i], due[j]) })
	for _, tid := range due {
		rt := n.running[tid]
		delete(n.running, tid)
		n.used = n.used.Sub(rt.launch.Demand).Max(resources.Vector{})
		n.completed = append(n.completed, wire.TaskCompletion{
			Task:     tid,
			Usage:    rt.launch.Demand,
			Duration: rt.launch.Duration,
		})
		completed.Add(1)
	}
}

// launch records a synthetic task: no goroutine, no sleep — just a
// usage charge and a due time checked at beat time.
func (n *node) launch(l wire.TaskLaunch, now time.Time, compression float64) {
	if _, dup := n.running[l.Task]; dup {
		return
	}
	wall := time.Duration(l.Duration / compression * float64(time.Second))
	n.running[l.Task] = runningTask{launch: l, due: now.Add(wall)}
	n.used = n.used.Add(l.Demand)
}

// handleKills drops orphaned tasks without reporting completions.
func (n *node) handleKills(kill []workload.TaskID, killed *atomic.Uint64) {
	for _, tid := range kill {
		rt, ok := n.running[tid]
		if !ok {
			continue
		}
		delete(n.running, tid)
		n.used = n.used.Sub(rt.launch.Demand).Max(resources.Vector{})
		killed.Add(1)
	}
}

// handlePreempts drops gang-evicted tasks without reporting
// completions: the RM already requeued the attempt as failed.
func (n *node) handlePreempts(preempt []wire.TaskPreempt, preempted *atomic.Uint64) {
	for _, p := range preempt {
		rt, ok := n.running[p.Task]
		if !ok {
			continue
		}
		delete(n.running, p.Task)
		n.used = n.used.Sub(rt.launch.Demand).Max(resources.Vector{})
		preempted.Add(1)
	}
}

// requeue puts undelivered completions back at the buffer head.
func (n *node) requeue(done []wire.TaskCompletion) {
	if len(done) > 0 {
		n.completed = append(done, n.completed...)
	}
}

func taskIDLess(a, b workload.TaskID) bool {
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	return a.Index < b.Index
}
