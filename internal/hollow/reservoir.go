package hollow

import (
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
)

// reservoir keeps a bounded uniform sample of observations so exact
// quantiles survive arbitrarily long runs in constant memory. The
// telemetry histograms use ×2 geometric buckets — too coarse for the
// p50/p99 heartbeat-RTT numbers the scale snapshots track — so the
// harness samples raw values instead (Vitter's algorithm R).
type reservoir struct {
	mu      sync.Mutex
	rng     *rand.Rand
	samples []float64
	seen    int64
	cap     int
}

func newReservoir(capacity int, seed int64) *reservoir {
	if capacity <= 0 {
		capacity = 8192
	}
	return &reservoir{
		rng: rand.New(rand.NewSource(seed)),
		cap: capacity,
	}
}

func (r *reservoir) observe(v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	if i := r.rng.Int63n(r.seen); i < int64(r.cap) {
		r.samples[i] = v
	}
}

func (r *reservoir) count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// quantile returns the q-quantile (q in [0,1]) of the sampled
// population, or 0 when nothing was observed.
func (r *reservoir) quantile(q float64) float64 {
	r.mu.Lock()
	sorted := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// countingConn wraps a net.Conn and accumulates transferred byte counts
// into shared atomic counters — the harness's wire-bytes-per-node
// measurement taps every fleet connection through this.
type countingConn struct {
	net.Conn
	sent, recv *atomic.Uint64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(uint64(n))
	return n, err
}
