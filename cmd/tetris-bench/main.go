// tetris-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the measured-vs-paper comparison.
//
// Usage:
//
//	tetris-bench -list
//	tetris-bench -run fig7
//	tetris-bench -run all -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tetris-sched/tetris/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		run   = flag.String("run", "", "experiment id to run, or \"all\"")
		scale = flag.Float64("scale", 1, "experiment scale (1 = full size)")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Printf("%-10s %-12s %s\n", "id", "paper", "description")
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *run == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -run <id> or -run all")
			os.Exit(2)
		}
		return
	}

	p := experiments.Params{Scale: *scale, Seed: *seed}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		fmt.Printf("==================== %s (%s) ====================\n", e.ID, e.Paper)
		start := time.Now()
		if err := e.Run(p, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("-------------------- %s done in %s --------------------\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
