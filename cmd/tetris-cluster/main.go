// tetris-cluster boots the distributed prototype on loopback TCP: one
// resource manager, N node managers and one job manager per submitted
// job, with time-compressed emulated task execution (§4.4).
//
// Usage:
//
//	tetris-cluster -nodes 8 -jobs 4 -compression 100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/am"
	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/journal"
	"github.com/tetris-sched/tetris/internal/nm"
	"github.com/tetris-sched/tetris/internal/rm"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/telemetry"
	"github.com/tetris-sched/tetris/internal/wire"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 8, "number of node managers")
		jobs        = flag.Int("jobs", 4, "number of jobs to submit")
		compression = flag.Float64("compression", 100, "time compression factor")
		seed        = flag.Int64("seed", 42, "workload seed")
		verbose     = flag.Bool("v", false, "verbose RM/NM logging")

		nodeTimeout = flag.Duration("node-timeout", 0, "declare a node dead after this heartbeat silence (0 = off)")
		killNode    = flag.Int("kill-node", -1, "node ID to kill mid-run (-1 = none; requires -node-timeout)")
		killAfter   = flag.Duration("kill-after", time.Second, "when to kill -kill-node")
		reviveAfter = flag.Duration("revive-after", 0, "start a replacement NM this long after the kill (0 = never)")

		journalDir = flag.String("journal-dir", "", "RM write-ahead journal directory (empty = no durability); a restarted RM pointed at the same directory recovers its state")
		fsyncMode  = flag.String("fsync", "interval", "journal fsync policy: interval, always, or never")
		snapEvery  = flag.Int("snapshot-every", 0, "journal records between snapshot checkpoints (0 = default)")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, JSON /debug/status and /debug/trace, and pprof on this address (empty = off)")

		deltaBeats = flag.Bool("delta-heartbeats", false, "NMs send delta availability reports when usage is unchanged since the last acked beat")
		wireCodec  = flag.String("wire-codec", "json", "wire codec NMs and AMs speak to the RM: json (legacy v0 frames) or binary (v1 zero-copy frames; the RM replies in kind)")

		coreName = flag.String("core", "incremental", "tetris schedule core: incremental | reference | parallel")
		workers  = flag.Int("sched-workers", 0, "parallel core pool size (0 = GOMAXPROCS; needs -core=parallel)")
		shards   = flag.Int("shards", 1, "scheduler shards (>1 boots the two-level sharded RM)")

		connTimeout = flag.Duration("conn-timeout", 0, "per-read/write deadline on RM connection handlers (0 = 2m default)")
		tenant      = flag.String("tenant", "", "tenant name stamped on submitted jobs (empty = anonymous default tenant)")
		quotaJobs   = flag.Int("tenant-quota-jobs", 0, "per-tenant queued-job quota; >0 enables the admission front door")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant submit rate limit, jobs/sec (0 = unlimited; needs -tenant-quota-jobs)")
		shedHigh    = flag.Int("shed-highwater", 0, "unfinished-job backlog where priority shedding starts (0 = off; needs -tenant-quota-jobs)")
		shedLimit   = flag.Int("shed-limit", 0, "backlog where every submission sheds (0 = 2x highwater)")
	)
	flag.Parse()
	codec, err := wire.ParseCodec(*wireCodec)
	if err != nil {
		log.Fatal(err)
	}
	syncPolicy, err := journal.ParsePolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("-fsync: %v", err)
	}
	if *killNode >= 0 && *nodeTimeout <= 0 {
		log.Fatal("-kill-node needs -node-timeout, or the RM will wait on the dead node forever")
	}
	if *killNode >= *nodes {
		log.Fatalf("-kill-node %d out of range (%d nodes)", *killNode, *nodes)
	}

	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "", log.Lmicroseconds)
	}
	// One registry aggregates RM, NM and AM series; the scheduler's
	// decision traces land in a bounded ring served at /debug/trace.
	reg := telemetry.NewRegistry()
	ring := scheduler.NewDecisionRing(256, 1)
	schedCfg := tetris.DefaultConfig()
	schedCfg.Trace = ring
	switch *coreName {
	case "incremental":
		schedCfg.Core = tetris.CoreIncremental
	case "reference":
		schedCfg.Core = tetris.CoreReference
	case "parallel":
		schedCfg.Core = tetris.CoreParallel
		schedCfg.Workers = *workers
	default:
		log.Fatalf("unknown core %q (want incremental, reference or parallel)", *coreName)
	}
	// Admission front door: enabled when a per-tenant quota is set.
	var admCfg *rm.AdmissionConfig
	if *quotaJobs > 0 {
		admCfg = &rm.AdmissionConfig{
			Defaults:      rm.TenantLimits{MaxQueuedJobs: *quotaJobs, SubmitRate: *tenantRate},
			ShedHighWater: *shedHigh,
			ShedLimit:     *shedLimit,
		}
	} else if *tenantRate > 0 || *shedHigh > 0 {
		log.Fatal("-tenant-rate/-shed-highwater need -tenant-quota-jobs to enable admission")
	}
	// srv is the single global RM or, with -shards > 1, the two-level
	// sharded RM; both speak the same wire protocol.
	var srv rmServer
	if *shards > 1 {
		srv, err = rm.NewSharded("127.0.0.1:0", rm.ShardedConfig{
			Shards:        *shards,
			NewScheduler:  func() tetris.Scheduler { return tetris.NewScheduler(schedCfg) },
			NewEstimator:  tetris.NewEstimator,
			NodeTimeout:   *nodeTimeout,
			JournalDir:    *journalDir,
			JournalSync:   syncPolicy,
			SnapshotEvery: *snapEvery,
			Admission:     admCfg,
			ConnTimeout:   *connTimeout,
			Metrics:       reg,
			Logger:        logger,
		})
	} else {
		srv, err = rm.New("127.0.0.1:0", rm.Config{
			Scheduler:     tetris.NewScheduler(schedCfg),
			Estimator:     tetris.NewEstimator(),
			Logger:        logger,
			NodeTimeout:   *nodeTimeout,
			JournalDir:    *journalDir,
			JournalSync:   syncPolicy,
			SnapshotEvery: *snapEvery,
			Admission:     admCfg,
			ConnTimeout:   *connTimeout,
			Metrics:       reg,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("resource manager listening on %s (%d shard(s))\n", srv.Addr(), *shards)
	if *journalDir != "" {
		fmt.Printf("journaling to %s (fsync=%s)\n", *journalDir, *fsyncMode)
	}
	if *metricsAddr != "" {
		ts := &telemetry.Server{
			Registry: reg,
			Status:   func() (any, error) { return srv.ClusterStatus(), nil },
			Trace:    func() any { return ring.Snapshot() },
		}
		if err := ts.Start(*metricsAddr); err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	capVec := tetris.NewVector(16, 32, 200, 200, 1000, 1000)
	var nmWG sync.WaitGroup
	runNM := func(nodeCtx context.Context, id int) {
		node := nm.New(nm.Config{
			NodeID:          id,
			Capacity:        capVec,
			RMAddr:          srv.Addr(),
			Compression:     *compression,
			Logger:          logger,
			Metrics:         reg,
			DeltaHeartbeats: *deltaBeats,
			Codec:           codec,
		})
		nmWG.Add(1)
		go func() {
			defer nmWG.Done()
			if err := node.Run(nodeCtx); err != nil && nodeCtx.Err() == nil {
				log.Printf("nm %d: %v", id, err)
			}
		}()
	}
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	for i := 0; i < *nodes; i++ {
		if i == *killNode {
			runNM(victimCtx, i)
		} else {
			runNM(ctx, i)
		}
	}
	fmt.Printf("%d node managers running (%.0f× time compression)\n", *nodes, *compression)

	if *killNode >= 0 {
		revive := *reviveAfter
		kill, id := *killAfter, *killNode
		go func() {
			select {
			case <-time.After(kill):
				fmt.Printf("killing node manager %d\n", id)
				killVictim()
			case <-ctx.Done():
				return
			}
			if revive <= 0 {
				return
			}
			select {
			case <-time.After(revive):
				fmt.Printf("starting replacement node manager %d\n", id)
				runNM(ctx, id)
			case <-ctx.Done():
			}
		}()
	}

	wl := tetris.GenerateWorkload(tetris.TraceConfig{
		Seed:        *seed,
		NumJobs:     *jobs,
		NumMachines: *nodes,
	})
	// Shrink the generated jobs so the demo finishes quickly.
	for _, j := range wl.Jobs {
		for _, st := range j.Stages {
			if len(st.Tasks) > 30 {
				st.Tasks = st.Tasks[:30]
			}
		}
	}

	start := time.Now()
	var amWG sync.WaitGroup
	for _, j := range wl.Jobs {
		j := j
		amWG.Add(1)
		go func() {
			defer amWG.Done()
			res, err := am.Run(ctx, am.Config{RMAddr: srv.Addr(), Job: j, Tenant: *tenant, Metrics: reg, Codec: codec})
			if err != nil {
				if ctx.Err() == nil {
					log.Printf("job %d: %v", j.ID, err)
				}
				return
			}
			fmt.Printf("job %-3d (%s, %d tasks) finished: wall %-8s emulated %.0fs\n",
				j.ID, j.Name, j.NumTasks(), res.Wall.Round(time.Millisecond),
				res.Wall.Seconds()**compression)
		}()
	}
	amWG.Wait()
	fmt.Printf("all jobs done in %s wall time\n", time.Since(start).Round(time.Millisecond))

	nmMean, nmMax, amMean, amMax := srv.HeartbeatStats()
	fmt.Printf("RM heartbeat cost: NM mean %.0fµs max %.0fµs; AM mean %.0fµs max %.0fµs\n",
		nmMean*1e6, nmMax*1e6, amMean*1e6, amMax*1e6)
	if appends, snaps, ok := srv.JournalStats(); ok {
		fmt.Printf("journal: %d records appended, %d snapshots\n", appends, snaps)
	}
	if dropped := srv.DroppedFaultEvents(); dropped > 0 {
		fmt.Printf("fault log: %d oldest records evicted from the bounded ring\n", dropped)
	}
	if ev := srv.FaultEvents(); len(ev) > 0 {
		st := srv.ClusterStatus()
		fmt.Printf("cluster: %d/%d nodes live\n", len(st.Live), st.Nodes)
		for _, e := range ev {
			switch e.Kind {
			case faults.MachineCrash:
				fmt.Printf("fault: t=%-6.1f node %d crashed, %d task attempts reclaimed\n",
					e.Time, e.Machine, e.TasksKilled)
			case faults.MachineRecover:
				fmt.Printf("fault: t=%-6.1f node %d recovered after %.1fs down\n",
					e.Time, e.Machine, e.Downtime)
			}
		}
	}
	cancel()
	nmWG.Wait()
}

// rmServer is the driver-facing surface shared by rm.Server and
// rm.Sharded.
type rmServer interface {
	Addr() string
	Close() error
	ClusterStatus() wire.ClusterStatusReply
	HeartbeatStats() (nmMean, nmMax, amMean, amMax float64)
	JournalStats() (appends, snapshots uint64, ok bool)
	DroppedFaultEvents() uint64
	FaultEvents() []faults.Record
}
