// tetris-sim runs one trace-driven simulation and reports makespan, job
// completion times and utilization.
//
// Usage:
//
//	tetris-sim -scheduler tetris -machines 100 -jobs 200
//	tetris-sim -scheduler drf -trace trace.json
//	tetris-sim -scheduler tetris -fairness 0 -barrier 1 -compare
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/stats"
	"github.com/tetris-sched/tetris/internal/telemetry"
)

func main() {
	var (
		schedName = flag.String("scheduler", "tetris", "tetris | slot-fair | drf")
		machines  = flag.Int("machines", 100, "cluster size")
		jobs      = flag.Int("jobs", 100, "jobs to generate (ignored with -trace)")
		tracePath = flag.String("trace", "", "load workload from JSON instead of generating")
		traceKind = flag.String("workload", "suite", "generator: suite | facebook")
		seed      = flag.Int64("seed", 42, "random seed")
		span      = flag.Float64("arrival-span", 5000, "arrival span in seconds (0 = all at t=0)")
		fairness  = flag.Float64("fairness", 0.25, "tetris fairness knob f ∈ [0,1)")
		barrier   = flag.Float64("barrier", 0.9, "tetris barrier knob b ∈ (0,1]")
		penalty   = flag.Float64("remote-penalty", 0.1, "tetris remote penalty")
		epsMult   = flag.Float64("eps", 1, "tetris ε multiplier m")
		coreName  = flag.String("core", "incremental", "tetris schedule core: incremental | reference | parallel")
		scenario  = flag.String("scenario", "", "named scenario: gang (ML/MPI gang mix, gang coordinator wrapped around the scheduler)")
		gangFrac  = flag.Float64("gang-fraction", 0.3, "fraction of gang jobs in -scenario gang")
		workers   = flag.Int("sched-workers", 0, "parallel core pool size (0 = GOMAXPROCS; needs -core=parallel)")
		compare   = flag.Bool("compare", false, "also run slot-fair and DRF and print gains")
		failures  = flag.Float64("failures", 0, "task failure probability (re-executed on failure)")

		chaos      = flag.Float64("chaos", 0, "fraction of machines to crash and recover (0 = off)")
		chaosSeed  = flag.Int64("chaos-seed", 7, "fault-plan seed (same seed → bit-identical run)")
		mttr       = flag.Float64("mttr", 60, "mean machine downtime in seconds")
		stragglers = flag.Float64("stragglers", 0, "per-attempt straggler probability")
		stragFact  = flag.Float64("straggler-factor", 0.5, "straggler speed factor (fraction of full speed)")
		maxAttempt = flag.Int("max-attempts", 0, "per-task attempt cap; the job is abandoned past it (0 = unlimited)")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /debug/trace and pprof on this address during the run (empty = off)")
		sampleEvery = flag.Float64("sample-every", 0, "utilization sampling period in simulated seconds (0 = 10 when -metrics-addr is set, else off)")
	)
	flag.Parse()

	// Telemetry: one registry across all runs of this invocation (under
	// -compare the baselines aggregate into the same series); decision
	// traces from the tetris scheduler land in a bounded ring.
	var (
		reg  *telemetry.Registry
		ring *scheduler.DecisionRing
	)
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		ring = scheduler.NewDecisionRing(256, 16)
		ts := &telemetry.Server{Registry: reg, Trace: func() any { return ring.Snapshot() }}
		if err := ts.Start(*metricsAddr); err != nil {
			log.Fatalf("-metrics-addr: %v", err)
		}
		defer ts.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", ts.Addr())
		if *sampleEvery == 0 {
			*sampleEvery = 10
		}
	}

	if *scenario != "" && *scenario != "gang" {
		log.Fatalf("unknown scenario %q (want gang)", *scenario)
	}
	wl := loadWorkload(*tracePath, *traceKind, *scenario, *seed, *jobs, *machines, *span, *gangFrac)
	if wl.NumMachines > *machines {
		log.Fatalf("workload references %d machines; raise -machines", wl.NumMachines)
	}
	var mainSched tetris.Scheduler
	mkSched := func(name string) tetris.Scheduler {
		switch name {
		case "tetris":
			cfg := tetris.DefaultConfig()
			cfg.Fairness = *fairness
			cfg.Barrier = *barrier
			cfg.RemotePenalty = *penalty
			cfg.EpsilonMultiplier = *epsMult
			switch *coreName {
			case "incremental":
				cfg.Core = tetris.CoreIncremental
			case "reference":
				cfg.Core = tetris.CoreReference
			case "parallel":
				cfg.Core = tetris.CoreParallel
				cfg.Workers = *workers
			default:
				log.Fatalf("unknown core %q (want incremental, reference or parallel)", *coreName)
			}
			cfg.Trace = ring
			return tetris.NewScheduler(cfg)
		case "slot-fair", "cs", "fair":
			return tetris.NewSlotFairScheduler()
		case "drf":
			return tetris.NewDRFScheduler()
		case "drf-network":
			return scheduler.NewDRFWithNetwork()
		default:
			log.Fatalf("unknown scheduler %q", name)
			return nil
		}
	}

	var plan *tetris.FaultPlan
	if *chaos > 0 || *stragglers > 0 {
		horizon := *span
		if horizon <= 0 {
			horizon = 1000
		}
		plan = tetris.GenerateFaultPlan(tetris.FaultPlanConfig{
			Seed:            *chaosSeed,
			Machines:        *machines,
			Horizon:         horizon,
			CrashFraction:   *chaos,
			MeanDowntime:    *mttr,
			StragglerProb:   *stragglers,
			StragglerFactor: *stragFact,
		})
	}

	run := func(name string) *tetris.Result {
		s := mkSched(name)
		if *scenario == "gang" {
			// Same gang layer around every policy, so -compare measures
			// packing differences, not gang-admission differences.
			s = tetris.NewGangCoordinator(s, tetris.DefaultGangConfig())
		}
		if mainSched == nil {
			mainSched = s
		}
		res, err := tetris.Simulate(tetris.SimConfig{
			Cluster:         tetris.NewFacebookCluster(*machines),
			Workload:        wl,
			Scheduler:       s,
			TaskFailureProb: *failures,
			FaultPlan:       plan,
			MaxTaskAttempts: *maxAttempt,
			SampleEvery:     *sampleEvery,
			Metrics:         reg,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return res
	}

	res := run(*schedName)
	jcts := res.JCTs()
	fmt.Printf("scheduler     %s\n", *schedName)
	fmt.Printf("jobs          %d (%d tasks)\n", len(res.Jobs), wl.NumTasks())
	fmt.Printf("makespan      %.0f s\n", res.Makespan)
	fmt.Printf("avg JCT       %.0f s (median %.0f, p90 %.0f)\n",
		res.AvgJCT(), stats.Median(jcts), stats.Percentile(jcts, 90))
	fmt.Printf("task duration %.1f s mean\n", res.MeanTaskDuration())
	fmt.Printf("locality      %.0f%% of input bytes read locally\n", 100*res.LocalityFraction())
	if *scenario == "gang" {
		fmt.Printf("gangs         %d committed (admit wait p50 %.0f s, p99 %.0f s), %d hoards released\n",
			res.GangCommits, res.GangWaitPercentile(50), res.GangWaitPercentile(99), res.GangReleases)
		fmt.Printf("preemptions   %d attempts evicted for gangs (%.2f/1000 s simulated)\n",
			res.Preemptions, 1000*float64(res.Preemptions)/res.Makespan)
	}
	inner := mainSched
	if w, ok := inner.(interface{ Inner() tetris.Scheduler }); ok {
		inner = w.Inner()
	}
	if p, ok := inner.(interface {
		ParallelStats() (tetris.ParallelStats, bool)
	}); ok {
		if ps, ok := p.ParallelStats(); ok && ps.Rounds > 0 {
			fmt.Printf("parallel      %d workers, %.0f%% occupancy, %.1f µs mean scatter over %d rounds\n",
				ps.Workers, 100*ps.Occupancy(),
				float64(ps.ScatterNs)/float64(ps.Rounds)/1e3, ps.Rounds)
		}
	}
	if *failures > 0 {
		fmt.Printf("failures      %d task attempts failed and re-ran\n", res.FailedAttempts)
	}
	if plan != nil {
		st := res.RecoveryStats()
		fmt.Printf("chaos         %d crashes, %d recoveries, %d task attempts killed\n",
			st.Crashes, st.Recoveries, st.TasksKilled)
		if st.Recoveries > 0 {
			fmt.Printf("downtime      %.0f s mean, %.0f s max\n", st.MeanDowntime, st.MaxDowntime)
		}
		if res.Stragglers > 0 {
			fmt.Printf("stragglers    %d task attempts injected\n", res.Stragglers)
		}
		if len(res.KilledJobs) > 0 {
			fmt.Printf("killed jobs   %v (exceeded -max-attempts %d)\n", res.KilledJobs, *maxAttempt)
		}
	}

	if *compare && *schedName == "tetris" {
		for _, base := range []string{"slot-fair", "drf"} {
			b := run(base)
			fmt.Printf("\nvs %-10s mean JCT gain %.1f%%  median %.1f%%  makespan gain %.1f%%\n",
				base,
				stats.Mean(tetris.PerJobImprovement(b, res)),
				stats.Median(tetris.PerJobImprovement(b, res)),
				tetris.Improvement(b.Makespan, res.Makespan))
		}
	}
}

func loadWorkload(path, kind, scenario string, seed int64, jobs, machines int, span, gangFrac float64) *tetris.Workload {
	if path != "" {
		wl, err := tetris.LoadWorkload(path)
		if err != nil {
			log.Fatalf("load trace: %v", err)
		}
		return wl
	}
	cfg := tetris.TraceConfig{
		Seed: seed, NumJobs: jobs, NumMachines: machines,
		ArrivalSpanSec: span, RecurringFraction: 0.4,
	}
	if scenario == "gang" {
		return tetris.GenerateGangWorkload(cfg, gangFrac)
	}
	switch kind {
	case "suite":
		return tetris.GenerateWorkload(cfg)
	case "facebook":
		return tetris.GenerateFacebookWorkload(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload kind %q\n", kind)
		os.Exit(2)
		return nil
	}
}
