// tetris-hollow is the Kubemark-style scale harness: it boots one real
// resource manager in-process and points a hollow-node fleet
// (internal/hollow) plus a hollow job-manager pool at it — thousands of
// protocol-faithful NMs and hundreds of AMs multiplexed over a handful
// of TCP connections, with synthetic task execution so the process cost
// scales with heartbeats, not tasks.
//
// The run ends when every job finishes or -duration elapses, whichever
// comes first, and always writes a versioned BENCH_scale_<scenario>.json
// snapshot (internal/bench schema) with the scale trajectory's core
// metrics: scheduling rounds/sec, NM heartbeat RTT p50/p99, wire bytes
// per node per second, and process CPU per node. Gate it in CI with:
//
//	benchgate -check BENCH_scale_smoke.json -require rounds_per_sec,...
//
// -scenario wire runs the same workload twice at equal node count —
// once with legacy JSON frames and individual heartbeats, once with the
// v1 binary codec and batched heartbeats — and writes one
// BENCH_scale_wire.json carrying the binary run's metrics plus the
// JSON baseline under json_* keys and the ratio
// wire_bytes_binary_over_json, the number CI gates on.
//
// Examples:
//
//	tetris-hollow -nodes 1000 -jobs 12 -duration 60s -scenario smoke
//	tetris-hollow -nodes 5000 -conns 16 -heartbeat 2s -duration 120s -scenario 5k
//	tetris-hollow -nodes 50000 -conns 64 -heartbeat 10s -batch 128 -scenario wire
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/bench"
	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/gang"
	"github.com/tetris-sched/tetris/internal/hollow"
	"github.com/tetris-sched/tetris/internal/rm"
	"github.com/tetris-sched/tetris/internal/telemetry"
	"github.com/tetris-sched/tetris/internal/trace"
	"github.com/tetris-sched/tetris/internal/wire"
)

// options is one run's fully resolved configuration. -scenario wire
// clones it twice with different codec/batch settings.
type options struct {
	nodes, conns, ams, jobs, taskCap int
	duration, heartbeat, poll        time.Duration
	nodeTimeout                      time.Duration
	compression                      float64
	seed                             int64
	delta                            bool
	codec                            wire.Codec
	batch                            int
	scenario                         string
	gangFrac                         float64
	crashFrac                        float64
	coreName                         string
	shards                           int
	logger                           *log.Logger

	tenants, stormWorkers, stormBatch int
	quotaJobs, shedHigh, shedLimit    int
	stormRate, tenantRate             float64
}

func main() {
	var (
		nodes       = flag.Int("nodes", 1000, "hollow node managers to multiplex")
		conns       = flag.Int("conns", 0, "TCP connections the fleet shares (0 = one per 512 nodes)")
		ams         = flag.Int("ams", 0, "hollow job managers (0 = one per 16 jobs)")
		jobs        = flag.Int("jobs", 12, "jobs to generate and submit")
		taskCap     = flag.Int("task-cap", 60, "truncate generated stages to this many tasks (0 = keep full §5.1 sizes)")
		duration    = flag.Duration("duration", 60*time.Second, "hard wall-clock budget for the run (per leg under -scenario wire)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "per-node heartbeat interval")
		poll        = flag.Duration("poll", 500*time.Millisecond, "per-job AM progress poll interval")
		compression = flag.Float64("compression", 50, "time compression for synthetic task durations and job arrivals")
		seed        = flag.Int64("seed", 1, "seed for workload, fault plan, stagger and sampling")
		delta       = flag.Bool("delta", true, "send delta availability reports (unchanged usage omitted from heartbeats)")
		codecName   = flag.String("codec", "json", "wire codec for fleet traffic: json (legacy v0 frames) or binary (v1 zero-copy frames)")
		batch       = flag.Int("batch", 0, "coalesce up to this many nodes' heartbeats per frame (0 = individual beats; the binary leg of -scenario wire defaults to 64)")
		scenario    = flag.String("scenario", "smoke", "scenario name; output file is BENCH_scale_<scenario>.json. \"gang\" switches to the ML/MPI gang workload and wraps the RM scheduler in the gang coordinator. \"wire\" runs a JSON baseline then a binary+batched leg and emits their comparison")
		gangFrac    = flag.Float64("gang-fraction", 0.5, "fraction of gang jobs in -scenario gang")
		outDir      = flag.String("out", ".", "directory for the BENCH snapshot")
		nodeTimeout = flag.Duration("node-timeout", 10*time.Second, "RM failure-detector heartbeat silence threshold (0 = off)")
		crashFrac   = flag.Float64("crash-frac", 0, "fraction of nodes that crash once mid-run (fault-plan churn; needs -node-timeout)")
		coreName    = flag.String("core", "incremental", "tetris schedule core: incremental | reference | parallel")
		shards      = flag.Int("shards", 1, "scheduler shards (>1 boots the two-level sharded RM)")
		verbose     = flag.Bool("v", false, "verbose RM/fleet logging")

		tenants      = flag.Int("tenants", 0, "enable the admission front door and run a submission storm drawn from this many tenants (0 = off)")
		stormWorkers = flag.Int("storm-workers", 8, "concurrent storm submission connections")
		stormBatch   = flag.Int("storm-batch", 16, "jobs per storm submit batch")
		stormRate    = flag.Float64("storm-rate", 0, "cap on storm jobs/sec across workers (0 = unthrottled)")
		quotaJobs    = flag.Int("tenant-quota-jobs", 50, "per-tenant queued-job quota")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant submit rate limit in jobs/sec (0 = off)")
		shedHigh     = flag.Int("shed-highwater", 2000, "admitted backlog where load shedding starts (0 = off)")
		shedLimit    = flag.Int("shed-limit", 0, "backlog where every submission sheds (0 = 2x highwater)")
	)
	flag.Parse()
	if *crashFrac > 0 && *nodeTimeout <= 0 {
		log.Fatal("-crash-frac needs -node-timeout: without a detector, crashed hollow nodes stay allocated forever")
	}
	if *shards < 1 {
		log.Fatal("-shards must be >= 1")
	}
	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}

	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "", log.Lmicroseconds)
	}
	o := options{
		nodes: *nodes, conns: *conns, ams: *ams, jobs: *jobs, taskCap: *taskCap,
		duration: *duration, heartbeat: *heartbeat, poll: *poll, nodeTimeout: *nodeTimeout,
		compression: *compression, seed: *seed, delta: *delta,
		codec: codec, batch: *batch,
		scenario: *scenario, gangFrac: *gangFrac, crashFrac: *crashFrac,
		coreName: *coreName, shards: *shards, logger: logger,
		tenants: *tenants, stormWorkers: *stormWorkers, stormBatch: *stormBatch,
		quotaJobs: *quotaJobs, shedHigh: *shedHigh, shedLimit: *shedLimit,
		stormRate: *stormRate, tenantRate: *tenantRate,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var snap *bench.Snapshot
	var failed int
	if *scenario == "wire" {
		snap, failed, err = runWire(ctx, o)
	} else {
		snap, failed, err = runOnce(ctx, o)
	}
	if err != nil {
		log.Fatalf("tetris-hollow: %v", err)
	}
	out := *outDir + "/BENCH_scale_" + *scenario + ".json"
	if err := snap.WriteFile(out); err != nil {
		log.Fatalf("tetris-hollow: %v", err)
	}
	fmt.Printf("  snapshot            %s\n", out)
	if failed > 0 {
		os.Exit(1)
	}
}

// runWire measures the wire overhaul: the same workload at equal node
// count over legacy JSON frames with individual heartbeats, then over
// the binary codec with batched heartbeats. The emitted snapshot is the
// binary leg's, extended with the baseline's numbers under json_* keys
// and the wire_bytes_binary_over_json ratio CI gates on (≤ 0.6 means
// the binary+batched wire spends at least 40% fewer bytes per node).
func runWire(ctx context.Context, o options) (*bench.Snapshot, int, error) {
	baseline := o
	baseline.scenario = "wire-json"
	baseline.codec = wire.CodecJSON
	baseline.batch = 0
	jsonSnap, jsonFailed, err := runOnce(ctx, baseline)
	if err != nil {
		return nil, jsonFailed, fmt.Errorf("json leg: %w", err)
	}

	binary := o
	binary.scenario = "wire-binary"
	binary.codec = wire.CodecBinary
	if binary.batch <= 1 {
		binary.batch = 64
	}
	snap, failed, err := runOnce(ctx, binary)
	if err != nil {
		return nil, failed, fmt.Errorf("binary leg: %w", err)
	}

	snap.Scenario = "wire"
	snap.Config["baseline_codec"] = "json"
	snap.Config["codec"] = "binary"
	for _, k := range []string{
		"wire_bytes_per_node_per_sec",
		"heartbeat_p50_seconds",
		"heartbeat_p99_seconds",
		"rounds_per_sec",
		"cpu_seconds_per_node_per_sec",
		"beats_per_sec",
	} {
		snap.Metrics["json_"+k] = jsonSnap.Metrics[k]
	}
	ratio := safeDiv(snap.Metrics["wire_bytes_per_node_per_sec"],
		jsonSnap.Metrics["wire_bytes_per_node_per_sec"])
	snap.Metrics["wire_bytes_binary_over_json"] = ratio
	fmt.Printf("tetris-hollow: wire comparison at %d nodes — %.0f → %.0f bytes/node/sec (binary/json = %.3f)\n",
		o.nodes, jsonSnap.Metrics["wire_bytes_per_node_per_sec"],
		snap.Metrics["wire_bytes_per_node_per_sec"], ratio)
	return snap, jsonFailed + failed, nil
}

// runOnce boots one RM, runs one fleet + AM pool (+ optional storm) to
// completion or the duration budget, and returns the measurement
// snapshot plus the count of failed jobs.
func runOnce(ctx context.Context, o options) (*bench.Snapshot, int, error) {
	reg := telemetry.NewRegistry()
	schedCfg := tetris.DefaultConfig()
	switch o.coreName {
	case "incremental":
		schedCfg.Core = tetris.CoreIncremental
	case "reference":
		schedCfg.Core = tetris.CoreReference
	case "parallel":
		schedCfg.Core = tetris.CoreParallel
	default:
		return nil, 0, fmt.Errorf("unknown core %q (want incremental, reference or parallel)", o.coreName)
	}
	// With -tenants the admission front door guards submissions: the
	// storm's anonymous masses get default quotas while the AM fleet
	// submits as the high-priority "fleet" tenant, so the real workload
	// rides above the shed floor.
	var admCfg *rm.AdmissionConfig
	if o.tenants > 0 {
		admCfg = &rm.AdmissionConfig{
			Defaults:      rm.TenantLimits{MaxQueuedJobs: o.quotaJobs, SubmitRate: o.tenantRate},
			Tenants:       map[string]rm.TenantLimits{"fleet": {Priority: 9}},
			ShedHighWater: o.shedHigh,
			ShedLimit:     o.shedLimit,
		}
	}
	// -scenario gang wraps every scheduler core (each shard's, under
	// -shards) in the gang coordinator. The hold and preemption bounds
	// compress with task time so release and eviction both fire inside a
	// short wall-clock run, and the attempt cap rises because each
	// preemption charges the victim's normal attempt accounting.
	gangScenario := o.scenario == "gang"
	var gangCfg *gang.Config
	maxAttempts := 4
	if gangScenario {
		gc := gang.DefaultConfig()
		gc.HoldSec /= o.compression
		gc.PreemptSec /= o.compression
		gangCfg = &gc
		maxAttempts = 64
	}

	// srv is either the single global RM or the two-level sharded RM;
	// both speak the same wire protocol, so the fleet cannot tell.
	var srv rmServer
	var err error
	if o.shards > 1 {
		srv, err = rm.NewSharded("127.0.0.1:0", rm.ShardedConfig{
			Shards:          o.shards,
			NewScheduler:    func() tetris.Scheduler { return tetris.NewScheduler(schedCfg) },
			NewEstimator:    tetris.NewEstimator,
			NodeTimeout:     o.nodeTimeout,
			MaxTaskAttempts: maxAttempts,
			Gang:            gangCfg,
			Metrics:         reg,
			Logger:          o.logger,
			Admission:       admCfg,
		})
	} else {
		srv, err = rm.New("127.0.0.1:0", rm.Config{
			Scheduler:       tetris.NewScheduler(schedCfg),
			Estimator:       tetris.NewEstimator(),
			NodeTimeout:     o.nodeTimeout,
			MaxTaskAttempts: maxAttempts,
			Gang:            gangCfg,
			Metrics:         reg,
			Logger:          o.logger,
			Admission:       admCfg,
		})
	}
	if err != nil {
		return nil, 0, err
	}
	defer srv.Close()
	fmt.Printf("tetris-hollow: RM on %s (%d shard(s)), %d hollow nodes, %d jobs, %v budget, %s codec, batch %d\n",
		srv.Addr(), o.shards, o.nodes, o.jobs, o.duration, o.codec, o.batch)

	var plan *faults.Plan
	if o.crashFrac > 0 {
		plan = faults.Generate(faults.PlanConfig{
			Seed:          o.seed,
			Machines:      o.nodes,
			Horizon:       o.duration.Seconds(),
			CrashFraction: o.crashFrac,
			MeanDowntime:  o.duration.Seconds() / 6,
		})
		fmt.Printf("tetris-hollow: fault plan injects %d crashes\n", plan.Crashes())
	}

	runCtx, expire := context.WithTimeout(ctx, o.duration)
	defer expire()

	fleet, err := hollow.New(hollow.Config{
		RMAddr:          srv.Addr(),
		Nodes:           o.nodes,
		Conns:           o.conns,
		Heartbeat:       o.heartbeat,
		Compression:     o.compression,
		Seed:            o.seed,
		DeltaHeartbeats: o.delta,
		Codec:           o.codec,
		Batch:           o.batch,
		Plan:            plan,
		Logger:          o.logger,
	})
	if err != nil {
		return nil, 0, err
	}

	genCfg := trace.Config{
		Seed:        o.seed,
		NumJobs:     o.jobs,
		NumMachines: o.nodes,
	}
	var wl *tetris.Workload
	if gangScenario {
		wl = trace.GenerateGangMix(genCfg, o.gangFrac)
	} else {
		wl = trace.GenerateSuite(genCfg)
	}
	if o.taskCap > 0 {
		for _, j := range wl.Jobs {
			for _, st := range j.Stages {
				if len(st.Tasks) > o.taskCap {
					st.Tasks = st.Tasks[:o.taskCap]
				}
			}
		}
	}

	start := time.Now()
	cpu0 := processCPU()
	fleetDone := make(chan struct{})
	go func() {
		defer close(fleetDone)
		fleet.Run(runCtx)
	}()

	var stormRep hollow.StormReport
	stormDone := make(chan struct{})
	if o.tenants > 0 {
		go func() {
			defer close(stormDone)
			stormRep = hollow.RunStorm(runCtx, hollow.StormConfig{
				RMAddr:    srv.Addr(),
				Tenants:   o.tenants,
				Workers:   o.stormWorkers,
				Batch:     o.stormBatch,
				Rate:      o.stormRate,
				Seed:      o.seed,
				BaseJobID: 1 << 30, // disjoint from the trace workload's ids
				Logger:    o.logger,
			})
		}()
	} else {
		close(stormDone)
	}

	amCfg := hollow.AMConfig{
		RMAddr:    srv.Addr(),
		Jobs:      wl.Jobs,
		AMs:       o.ams,
		Poll:      o.poll,
		TimeScale: o.compression,
		Seed:      o.seed,
		Codec:     o.codec,
		Logger:    o.logger,
	}
	if admCfg != nil {
		amCfg.Tenant = "fleet"
	}
	amRep := hollow.RunAMs(runCtx, amCfg)
	// Jobs are done (or the budget expired); stop the fleet and measure.
	expire()
	<-fleetDone
	<-stormDone
	elapsed := time.Since(start).Seconds()
	cpuSec := processCPU() - cpu0
	fr := fleet.Report()

	// With shards > 1 every RM series is labeled shard="<i>"; aggregate
	// rounds across shards and keep per-shard entries for the gate.
	perShard := make(map[string]float64)
	var rounds uint64
	var roundSec, nmHandleSec float64
	var nmHandleN uint64
	if o.shards > 1 {
		for i := 0; i < o.shards; i++ {
			label := strconv.Itoa(i)
			rh := reg.Histogram(telemetry.Label("tetris_rm_schedule_round_seconds", "shard", label), "")
			hh := reg.Histogram(telemetry.Label("tetris_rm_nm_heartbeat_seconds", "shard", label), "")
			rounds += rh.Count()
			roundSec += rh.Sum()
			nmHandleSec += hh.Sum()
			nmHandleN += hh.Count()
			perShard["shard"+label+"_rounds_per_sec"] = float64(rh.Count()) / elapsed
			perShard["shard"+label+"_heartbeat_p99_seconds"] = hh.Quantile(0.99)
		}
	} else {
		h := reg.Histogram("tetris_rm_schedule_round_seconds", "")
		rounds, roundSec = h.Count(), h.Sum()
		nmHB := reg.Histogram("tetris_rm_nm_heartbeat_seconds", "")
		nmHandleSec, nmHandleN = nmHB.Sum(), nmHB.Count()
	}

	// Gang counters follow the same shard-labeling scheme as the round
	// histograms; counts sum across shards, admit-wait quantiles take
	// the worst shard.
	var gangCommits, gangReleases, preempts uint64
	var gangP50, gangP99 float64
	if gangScenario {
		if o.shards > 1 {
			for i := 0; i < o.shards; i++ {
				label := strconv.Itoa(i)
				gangCommits += reg.Counter(telemetry.Label("tetris_rm_gang_commits_total", "shard", label), "").Value()
				gangReleases += reg.Counter(telemetry.Label("tetris_rm_gang_releases_total", "shard", label), "").Value()
				preempts += reg.Counter(telemetry.Label("tetris_rm_preemptions_total", "shard", label), "").Value()
				gh := reg.Histogram(telemetry.Label("tetris_rm_gang_admit_wait_seconds", "shard", label), "")
				if q := gh.Quantile(0.5); q > gangP50 {
					gangP50 = q
				}
				if q := gh.Quantile(0.99); q > gangP99 {
					gangP99 = q
				}
			}
		} else {
			gangCommits = reg.Counter("tetris_rm_gang_commits_total", "").Value()
			gangReleases = reg.Counter("tetris_rm_gang_releases_total", "").Value()
			preempts = reg.Counter("tetris_rm_preemptions_total", "").Value()
			gh := reg.Histogram("tetris_rm_gang_admit_wait_seconds", "")
			gangP50, gangP99 = gh.Quantile(0.5), gh.Quantile(0.99)
		}
	}

	snap := &bench.Snapshot{
		Schema:   bench.SchemaVersion,
		Kind:     "hollow-scale",
		Scenario: o.scenario,
		Unix:     time.Now().Unix(),
		Config: map[string]string{
			"nodes":       strconv.Itoa(o.nodes),
			"conns":       strconv.Itoa(resolvedConns(o.conns, o.nodes)),
			"jobs":        strconv.Itoa(o.jobs),
			"heartbeat":   o.heartbeat.String(),
			"poll":        o.poll.String(),
			"compression": strconv.FormatFloat(o.compression, 'g', -1, 64),
			"seed":        strconv.FormatInt(o.seed, 10),
			"delta":       strconv.FormatBool(o.delta),
			"codec":       o.codec.String(),
			"batch":       strconv.Itoa(o.batch),
			"core":        o.coreName,
			"shards":      strconv.Itoa(o.shards),
			"crash_frac":  strconv.FormatFloat(o.crashFrac, 'g', -1, 64),
			"duration":    o.duration.String(),
		},
		Metrics: map[string]float64{
			"elapsed_seconds":                elapsed,
			"nodes":                          float64(o.nodes),
			"rounds_per_sec":                 float64(rounds) / elapsed,
			"schedule_round_mean_seconds":    safeDiv(roundSec, float64(rounds)),
			"heartbeat_p50_seconds":          fr.RTTp50,
			"heartbeat_p99_seconds":          fr.RTTp99,
			"heartbeat_rtt_samples":          float64(fr.RTTSamples),
			"beats_per_sec":                  float64(fr.Beats) / elapsed,
			"delta_beats_total":              float64(fr.DeltaBeats),
			"delta_beat_fraction":            safeDiv(float64(fr.DeltaBeats), float64(fr.Beats)),
			"wire_bytes_per_node_per_sec":    float64(fr.BytesSent+fr.BytesRecv) / float64(o.nodes) / elapsed,
			"process_cpu_seconds_per_sec":    cpuSec / elapsed,
			"cpu_seconds_per_node_per_sec":   cpuSec / float64(o.nodes) / elapsed,
			"rm_nm_heartbeat_handle_seconds": safeDiv(nmHandleSec, float64(nmHandleN)),
			"shards":                         float64(o.shards),
			"registers_total":                float64(fr.Registers),
			"redials_total":                  float64(fr.Redials),
			"crash_windows_total":            float64(fr.Crashes),
			"tasks_launched_total":           float64(fr.TasksLaunched),
			"tasks_completed_total":          float64(fr.TasksCompleted),
			"jobs_submitted":                 float64(amRep.Submitted),
			"jobs_finished":                  float64(amRep.Finished),
			"jobs_failed":                    float64(amRep.Failed),
		},
	}
	for k, v := range perShard {
		snap.Metrics[k] = v
	}
	if o.tenants > 0 {
		att := float64(stormRep.Attempts)
		snap.Config["tenants"] = strconv.Itoa(o.tenants)
		snap.Config["storm_workers"] = strconv.Itoa(o.stormWorkers)
		snap.Config["storm_batch"] = strconv.Itoa(o.stormBatch)
		snap.Config["tenant_quota_jobs"] = strconv.Itoa(o.quotaJobs)
		snap.Config["shed_highwater"] = strconv.Itoa(o.shedHigh)
		snap.Metrics["admission_per_sec"] = safeDiv(float64(stormRep.Admitted+stormRep.Rejected), elapsed)
		snap.Metrics["submit_p50_seconds"] = stormRep.SubmitP50
		snap.Metrics["submit_p99_seconds"] = stormRep.SubmitP99
		snap.Metrics["storm_attempts_total"] = att
		snap.Metrics["storm_admitted_total"] = float64(stormRep.Admitted)
		snap.Metrics["storm_rejected_total"] = float64(stormRep.Rejected)
		snap.Metrics["storm_shed_total"] = float64(stormRep.Shed)
		snap.Metrics["storm_rate_limited_total"] = float64(stormRep.RateLimited)
		snap.Metrics["storm_quota_total"] = float64(stormRep.Quota)
		snap.Metrics["storm_errors_total"] = float64(stormRep.Errors)
		snap.Metrics["storm_batches_total"] = float64(stormRep.Batches)
		snap.Metrics["shed_rate"] = safeDiv(float64(stormRep.Shed), att)
		snap.Metrics["fleet_throttled_total"] = float64(amRep.Throttled)
	}
	if gangScenario {
		snap.Config["gang_fraction"] = strconv.FormatFloat(o.gangFrac, 'g', -1, 64)
		snap.Metrics["gangs_admitted_total"] = float64(gangCommits)
		snap.Metrics["gang_admit_p50_seconds"] = gangP50
		snap.Metrics["gang_admit_p99_seconds"] = gangP99
		snap.Metrics["preemptions_total"] = float64(preempts)
		snap.Metrics["preemptions_per_sec"] = float64(preempts) / elapsed
		snap.Metrics["gang_releases_total"] = float64(gangReleases)
		snap.Metrics["gang_releases_per_sec"] = float64(gangReleases) / elapsed
		// Fraction of hoard epochs that timed out instead of committing —
		// the coordinator's hoarding efficiency.
		snap.Metrics["gang_release_rate"] = safeDiv(float64(gangReleases), float64(gangReleases+gangCommits))
		snap.Metrics["tasks_preempted_total"] = float64(fr.TasksPreempted)
	}

	fmt.Printf("tetris-hollow: %s in %.1fs — %d/%d jobs finished, %d tasks completed\n",
		o.scenario, elapsed, amRep.Finished, amRep.Submitted, fr.TasksCompleted)
	fmt.Printf("  rounds/sec          %.1f (mean round %.3fms)\n",
		float64(rounds)/elapsed, 1e3*safeDiv(roundSec, float64(rounds)))
	if o.shards > 1 {
		for i := 0; i < o.shards; i++ {
			label := strconv.Itoa(i)
			fmt.Printf("  shard %-2s            %.1f rounds/sec, heartbeat p99 %.3fms\n",
				label, perShard["shard"+label+"_rounds_per_sec"],
				1e3*perShard["shard"+label+"_heartbeat_p99_seconds"])
		}
	}
	fmt.Printf("  heartbeat RTT       p50 %.3fms  p99 %.3fms  (%d samples)\n",
		fr.RTTp50*1e3, fr.RTTp99*1e3, fr.RTTSamples)
	fmt.Printf("  wire bytes/node/sec %.0f (delta beats %.0f%%, %s codec, batch %d)\n",
		float64(fr.BytesSent+fr.BytesRecv)/float64(o.nodes)/elapsed,
		100*safeDiv(float64(fr.DeltaBeats), float64(fr.Beats)), o.codec, o.batch)
	fmt.Printf("  process CPU         %.2fs (%.4fms per node per sec)\n",
		cpuSec, 1e3*cpuSec/float64(o.nodes)/elapsed)
	if o.tenants > 0 {
		fmt.Printf("  admission           %.0f verdicts/sec — %d admitted, %d rejected (%d shed, %d rate-limited, %d quota)\n",
			snap.Metrics["admission_per_sec"], stormRep.Admitted, stormRep.Rejected,
			stormRep.Shed, stormRep.RateLimited, stormRep.Quota)
		fmt.Printf("  submit RTT          p50 %.3fms  p99 %.3fms  (%d batches, %d transport errors)\n",
			stormRep.SubmitP50*1e3, stormRep.SubmitP99*1e3, stormRep.Batches, stormRep.Errors)
	}
	if gangScenario {
		fmt.Printf("  gangs               %d admitted (admit wait p50 %.3fs p99 %.3fs), %d hoards released\n",
			gangCommits, gangP50, gangP99, gangReleases)
		fmt.Printf("  preemptions         %d decided (%.1f/sec), %d kills delivered to nodes\n",
			preempts, float64(preempts)/elapsed, fr.TasksPreempted)
	}
	if err := srv.VerifyLedger(); err != nil {
		return nil, amRep.Failed, fmt.Errorf("ledger check failed: %v", err)
	}
	fmt.Println("  ledger              balanced")
	return snap, amRep.Failed, nil
}

// rmServer is the driver-facing surface shared by rm.Server and
// rm.Sharded.
type rmServer interface {
	Addr() string
	Close() error
	VerifyLedger() error
}

// processCPU returns the process's cumulative user+system CPU seconds.
func processCPU() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 { return float64(tv.Sec) + float64(tv.Usec)/1e6 }
	return sec(ru.Utime) + sec(ru.Stime)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// resolvedConns mirrors hollow.New's connection-count default so the
// snapshot's config records the resolved value.
func resolvedConns(conns, nodes int) int {
	if conns <= 0 {
		conns = (nodes + 511) / 512
	}
	if conns > nodes {
		conns = nodes
	}
	return conns
}
