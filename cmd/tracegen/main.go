// tracegen generates synthetic workload traces calibrated to the
// production statistics of §2.2 and prints their summary statistics.
//
// Usage:
//
//	tracegen -jobs 200 -machines 100 -out trace.json
//	tracegen -workload facebook -summary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/trace"
)

func main() {
	var (
		kind     = flag.String("workload", "suite", "generator: suite | facebook")
		jobs     = flag.Int("jobs", 200, "number of jobs")
		machines = flag.Int("machines", 100, "machine universe for block placement")
		seed     = flag.Int64("seed", 42, "random seed")
		span     = flag.Float64("arrival-span", 5000, "arrival span in seconds")
		recur    = flag.Float64("recurring", 0.4, "fraction of recurring jobs")
		out      = flag.String("out", "", "write the workload as JSON to this file")
		summary  = flag.Bool("summary", true, "print §2.2 summary statistics")
		heatmaps = flag.Bool("heatmaps", false, "print Figure-2 style demand heatmaps")
	)
	flag.Parse()

	cfg := tetris.TraceConfig{
		Seed: *seed, NumJobs: *jobs, NumMachines: *machines,
		ArrivalSpanSec: *span, RecurringFraction: *recur,
	}
	var wl *tetris.Workload
	switch *kind {
	case "suite":
		wl = tetris.GenerateWorkload(cfg)
	case "facebook":
		wl = tetris.GenerateFacebookWorkload(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload kind %q\n", *kind)
		os.Exit(2)
	}

	if *summary {
		s := tetris.SummarizeWorkload(wl)
		fmt.Print(s)
		fmt.Printf("\ncorrelation matrix (Table 2):\n%s", s.CorrelationTable())
	}
	if *heatmaps {
		for _, k := range []resources.Kind{resources.Memory, resources.DiskRead, resources.NetIn} {
			h := trace.Heatmap(wl, k, 40)
			fmt.Printf("\n--- %v vs cores ---\n%s", k, h.Render())
		}
	}
	if *out != "" {
		if err := tetris.SaveWorkload(*out, wl); err != nil {
			log.Fatalf("save: %v", err)
		}
		fmt.Printf("\nwrote %d jobs (%d tasks) to %s\n", len(wl.Jobs), wl.NumTasks(), *out)
	}
}
