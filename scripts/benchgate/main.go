// Command benchgate compares two `go test -bench` outputs (benchstat
// style) and fails when any benchmark slowed down beyond a threshold.
// CI runs the scheduler micro-benchmarks on the base and head commits
// and gates merges on:
//
//	benchgate -base base.txt -head head.txt -threshold 0.15
//
// Benchmarks present in only one file are reported but not gated (new
// or removed benchmarks are not regressions). Allocation counts are
// shown for context; only ns/op is gated, since allocs/op is separately
// pinned by TestScheduleAllocs.
//
// -pair A=B (repeatable) additionally gates benchmark A against
// benchmark B within the head file: A slower than B beyond the
// threshold fails. CI uses it to pin the parallel core's 1-worker
// overhead to the incremental core it degenerates to:
//
//	-pair 'BenchmarkTetrisScheduleParallel/large/w1=BenchmarkTetrisSchedule/large/incremental'
//
// Unlike base/head gating, a missing side of a pair is an error — a
// misspelled pair must not pass silently.
//
// Two JSON modes tie benchgate into the BENCH_*.json trajectory
// (internal/bench schema):
//
//	-json-out BENCH_micro.json -scenario micro
//
// additionally writes the head results as a versioned snapshot
// (metrics keyed "<benchmark>_ns_per_op"), so micro-benchmark history
// is archived in the same format the hollow scale harness emits.
//
//	benchgate -check BENCH_scale_smoke.json -require rounds_per_sec,heartbeat_p99_seconds
//
// is a standalone mode: it validates an existing snapshot — schema
// version, and that every -require metric is present and nonzero —
// and prints it. CI uses it to fail the scale-smoke job when the
// harness silently measured nothing. -max metric=bound (repeatable)
// additionally upper-bounds a metric in -check mode — zero passes,
// since a bound gates tail latency, not liveness:
//
//	benchgate -check BENCH_scale_overload.json \
//	    -require storm_admitted_total,storm_rejected_total \
//	    -max submit_p99_seconds=0.5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/tetris-sched/tetris/internal/bench"
)

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// maxList collects repeated -max flags, each of the form
// "metric=bound": in -check mode the metric must be present, finite,
// and no greater than the bound. Unlike -require, zero is acceptable —
// an upper bound gates tail latencies, not liveness.
type maxList []struct {
	key   string
	bound float64
}

func (m *maxList) String() string {
	var parts []string
	for _, e := range *m {
		parts = append(parts, fmt.Sprintf("%s=%g", e.key, e.bound))
	}
	return strings.Join(parts, ",")
}

func (m *maxList) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want metric=bound, got %q", s)
	}
	bound, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("bound in %q: %v", s, err)
	}
	*m = append(*m, struct {
		key   string
		bound float64
	}{k, bound})
	return nil
}

// pairList collects repeated -pair flags, each of the form
// "headBenchmark=referenceBenchmark".
type pairList [][2]string

func (p *pairList) String() string {
	var parts []string
	for _, pr := range *p {
		parts = append(parts, pr[0]+"="+pr[1])
	}
	return strings.Join(parts, ",")
}

func (p *pairList) Set(s string) error {
	a, b, ok := strings.Cut(s, "=")
	if !ok || a == "" || b == "" {
		return fmt.Errorf("want benchA=benchB, got %q", s)
	}
	*p = append(*p, [2]string{a, b})
	return nil
}

// parseBench reads `go test -bench` output: lines of the form
//
//	BenchmarkName/sub-8   1234   56789 ns/op   100 B/op   5 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so runs from machines
// with different core counts still match. Repeated lines (from -count)
// are averaged.
func parseBench(path string) (map[string]result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sums := map[string]result{}
	counts := map[string]int{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var r result
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
				ok = true
			case "allocs/op":
				r.allocsPerOp = v
				r.hasAllocs = true
			}
		}
		if !ok {
			continue
		}
		if _, seen := sums[name]; !seen {
			order = append(order, name)
		}
		prev := sums[name]
		prev.nsPerOp += r.nsPerOp
		prev.allocsPerOp += r.allocsPerOp
		prev.hasAllocs = prev.hasAllocs || r.hasAllocs
		sums[name] = prev
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	for name, n := range counts {
		r := sums[name]
		r.nsPerOp /= float64(n)
		r.allocsPerOp /= float64(n)
		sums[name] = r
	}
	return sums, order, nil
}

// metricVerdict renders a required metric's value for gate output and
// reports whether it passes (present, nonzero, finite).
func metricVerdict(s *bench.Snapshot, key string) (got string, ok bool) {
	v, present := s.Metrics[key]
	switch {
	case !present:
		return "missing", false
	case v != v:
		return "NaN", false
	case v == 0:
		return "0", false
	case v > 1e300 || v < -1e300:
		return fmt.Sprintf("%g (non-finite)", v), false
	default:
		return fmt.Sprintf("%g", v), true
	}
}

// runCheck implements -check: load a BENCH_*.json snapshot, demand the
// required metrics, and print one verdict line per requirement so a CI
// failure names exactly which metric broke the gate and what value it
// had. The returned error summarizes the failures (nil = gate passed).
func runCheck(path, require string, maxes maxList, w io.Writer) error {
	var required []string
	for _, k := range strings.Split(require, ",") {
		if k = strings.TrimSpace(k); k != "" {
			required = append(required, k)
		}
	}
	s, err := bench.ReadFile(path)
	if err != nil {
		return err
	}
	failed := 0
	for _, k := range required {
		got, ok := metricVerdict(s, k)
		if ok {
			fmt.Fprintf(w, "  %-40s %s\n", k, got)
			continue
		}
		failed++
		fmt.Fprintf(w, "  %-40s FAIL — got %s, required nonzero finite\n", k, got)
	}
	for _, e := range maxes {
		v, present := s.Metrics[e.key]
		switch {
		case !present:
			failed++
			fmt.Fprintf(w, "  %-40s FAIL — missing, bound <= %g\n", e.key, e.bound)
		case v != v || v > 1e300 || v < -1e300:
			failed++
			fmt.Fprintf(w, "  %-40s FAIL — got %g, not finite\n", e.key, v)
		case v > e.bound:
			failed++
			fmt.Fprintf(w, "  %-40s FAIL — got %g, bound <= %g\n", e.key, v, e.bound)
		default:
			fmt.Fprintf(w, "  %-40s %g (<= %g)\n", e.key, v, e.bound)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%s: %d of %d required metrics failed", path, failed, len(required)+len(maxes))
	}
	fmt.Fprintf(w, "benchgate: %s OK — kind=%s scenario=%s, %d metrics\n", path, s.Kind, s.Scenario, len(s.Metrics))
	return nil
}

// metricKey flattens a benchmark name into a snapshot metric key:
// lowercase, path separators and dashes to underscores.
func metricKey(name string) string {
	key := strings.ToLower(name)
	key = strings.NewReplacer("/", "_", "-", "_", "=", "_").Replace(key)
	return key + "_ns_per_op"
}

func main() {
	basePath := flag.String("base", "", "bench output of the base commit")
	headPath := flag.String("head", "", "bench output of the head commit")
	threshold := flag.Float64("threshold", 0.15, "max allowed ns/op slowdown (0.15 = +15%)")
	jsonOut := flag.String("json-out", "", "also write head results as a BENCH_*.json snapshot")
	scenario := flag.String("scenario", "micro", "scenario name recorded in the -json-out snapshot")
	checkPath := flag.String("check", "", "standalone: validate an existing BENCH_*.json snapshot and exit")
	require := flag.String("require", "", "comma-separated metrics that must be present and nonzero in -check")
	var pairs pairList
	flag.Var(&pairs, "pair", "gate benchA against benchB within the head file (benchA=benchB, repeatable)")
	var maxes maxList
	flag.Var(&maxes, "max", "upper-bound a -check metric (metric=bound, repeatable); the metric must be present, finite, and <= bound")
	flag.Parse()
	if *checkPath != "" {
		if err := runCheck(*checkPath, *require, maxes, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		return
	}
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -base base.txt -head head.txt [-threshold 0.15]")
		fmt.Fprintln(os.Stderr, "       benchgate -check BENCH_x.json [-require m1,m2]")
		os.Exit(2)
	}
	base, _, err := parseBench(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, order, err := parseBench(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks in", *headPath)
		os.Exit(2)
	}
	if *jsonOut != "" {
		snap := &bench.Snapshot{
			Schema:   bench.SchemaVersion,
			Kind:     "micro-bench",
			Scenario: *scenario,
			Unix:     time.Now().Unix(),
			Config:   map[string]string{"head": *headPath, "base": *basePath},
			Metrics:  make(map[string]float64, len(head)),
		}
		for name, r := range head {
			snap.Metrics[metricKey(name)] = r.nsPerOp
		}
		if err := snap.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %s (%d metrics)\n", *jsonOut, len(snap.Metrics))
	}

	failed := false
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, name := range order {
		h := head[name]
		b, inBase := base[name]
		if !inBase {
			fmt.Printf("%-60s %14s %14.0f %8s\n", name, "-", h.nsPerOp, "new")
			continue
		}
		delta := 0.0
		if b.nsPerOp > 0 {
			delta = h.nsPerOp/b.nsPerOp - 1
		}
		mark := ""
		if delta > *threshold {
			mark = "  << REGRESSION"
			failed = true
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n", name, b.nsPerOp, h.nsPerOp, delta*100, mark)
		if b.hasAllocs && h.hasAllocs && h.allocsPerOp > b.allocsPerOp {
			fmt.Printf("%-60s %14.0f %14.0f allocs/op (informational)\n", "  allocs:", b.allocsPerOp, h.allocsPerOp)
		}
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Printf("%-60s %14s %14s %8s\n", name, "-", "-", "removed")
		}
	}
	for _, pr := range pairs {
		a, okA := head[pr[0]]
		b, okB := head[pr[1]]
		if !okA || !okB {
			fmt.Fprintf(os.Stderr, "benchgate: -pair %s=%s: benchmark missing from %s\n", pr[0], pr[1], *headPath)
			os.Exit(2)
		}
		delta := 0.0
		if b.nsPerOp > 0 {
			delta = a.nsPerOp/b.nsPerOp - 1
		}
		mark := ""
		if delta > *threshold {
			mark = "  << REGRESSION"
			failed = true
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n",
			"pair: "+pr[0]+" vs "+pr[1], b.nsPerOp, a.nsPerOp, delta*100, mark)
	}
	if failed {
		fmt.Printf("\nbenchgate: FAIL — ns/op regression beyond +%.0f%%\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: OK")
}
