package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnap drops raw snapshot JSON into a temp file and returns its path.
func writeSnap(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodSnap = `{
  "schema": 1,
  "kind": "hollow-scale",
  "scenario": "smoke",
  "unix": 1700000000,
  "config": {"nodes": "100"},
  "metrics": {
    "rounds_per_sec": 42.5,
    "heartbeat_p99_seconds": 0.002,
    "zero_metric": 0,
    "huge_metric": 1e301
  }
}`

// TestRunCheck drives the -check gate over well-formed, missing-metric,
// and malformed snapshots, asserting that a failure names the offending
// metric and the value it actually had.
func TestRunCheck(t *testing.T) {
	cases := []struct {
		name       string
		body       string
		require    string
		maxes      []string // metric=bound specs fed through maxList.Set
		wantErr    string   // substring of the returned error ("" = nil)
		wantOutput []string
	}{
		{
			name:       "all required present",
			body:       goodSnap,
			require:    "rounds_per_sec,heartbeat_p99_seconds",
			wantOutput: []string{"rounds_per_sec", "42.5", "OK"},
		},
		{
			name:       "missing metric named in output",
			body:       goodSnap,
			require:    "rounds_per_sec,no_such_metric",
			wantErr:    "1 of 2 required metrics failed",
			wantOutput: []string{"no_such_metric", "got missing, required nonzero finite"},
		},
		{
			name:       "zero metric named with its value",
			body:       goodSnap,
			require:    "zero_metric",
			wantErr:    "1 of 1 required metrics failed",
			wantOutput: []string{"zero_metric", "got 0, required nonzero finite"},
		},
		{
			name:       "non-finite metric rejected",
			body:       goodSnap,
			require:    "huge_metric",
			wantErr:    "1 of 1 required metrics failed",
			wantOutput: []string{"huge_metric", "non-finite"},
		},
		{
			name:    "every failure reported, not just the first",
			body:    goodSnap,
			require: "zero_metric,no_such_metric,rounds_per_sec",
			wantErr: "2 of 3 required metrics failed",
			wantOutput: []string{
				"zero_metric", "no_such_metric",
				"got 0, required nonzero finite",
				"got missing, required nonzero finite",
			},
		},
		{
			name:    "wrong schema version",
			body:    strings.Replace(goodSnap, `"schema": 1`, `"schema": 99`, 1),
			require: "rounds_per_sec",
			wantErr: "schema",
		},
		{
			name:    "missing kind",
			body:    strings.Replace(goodSnap, `"kind": "hollow-scale",`, "", 1),
			require: "rounds_per_sec",
			wantErr: "kind",
		},
		{
			name:    "not JSON at all",
			body:    "rounds_per_sec: plenty\n",
			require: "rounds_per_sec",
			wantErr: "invalid character",
		},
		{
			name:    "empty require list passes any valid snapshot",
			body:    goodSnap,
			require: "",
			wantErr: "",
		},
		{
			name:       "max bound satisfied",
			body:       goodSnap,
			maxes:      []string{"heartbeat_p99_seconds=0.01"},
			wantOutput: []string{"heartbeat_p99_seconds", "(<= 0.01)"},
		},
		{
			name:       "max bound exceeded",
			body:       goodSnap,
			maxes:      []string{"heartbeat_p99_seconds=0.001"},
			wantErr:    "1 of 1 required metrics failed",
			wantOutput: []string{"heartbeat_p99_seconds", "got 0.002, bound <= 0.001"},
		},
		{
			name:    "max on missing metric fails",
			body:    goodSnap,
			maxes:   []string{"no_such_metric=5"},
			wantErr: "1 of 1 required metrics failed",
		},
		{
			name:  "max accepts zero where require would not",
			body:  goodSnap,
			maxes: []string{"zero_metric=1"},
		},
		{
			name:    "require and max failures both counted",
			body:    goodSnap,
			require: "zero_metric",
			maxes:   []string{"rounds_per_sec=1"},
			wantErr: "2 of 2 required metrics failed",
			wantOutput: []string{
				"got 0, required nonzero finite",
				"got 42.5, bound <= 1",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var maxes maxList
			for _, spec := range tc.maxes {
				if err := maxes.Set(spec); err != nil {
					t.Fatalf("maxList.Set(%q): %v", spec, err)
				}
			}
			var out strings.Builder
			err := runCheck(writeSnap(t, tc.body), tc.require, maxes, &out)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("runCheck() = %v, want nil\noutput:\n%s", err, out.String())
				}
			} else {
				if err == nil {
					t.Fatalf("runCheck() = nil, want error containing %q\noutput:\n%s", tc.wantErr, out.String())
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("runCheck() error %q does not contain %q", err, tc.wantErr)
				}
			}
			for _, want := range tc.wantOutput {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}

	if _, err := os.Stat(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("sanity: expected missing file")
	}
	if err := runCheck(filepath.Join(t.TempDir(), "nope.json"), "x", nil, &strings.Builder{}); err == nil {
		t.Fatal("runCheck on a missing file should error")
	}

	var m maxList
	if err := m.Set("no_bound"); err == nil {
		t.Error("maxList.Set without '=' should error")
	}
	if err := m.Set("k=not_a_number"); err == nil {
		t.Error("maxList.Set with non-numeric bound should error")
	}
}
