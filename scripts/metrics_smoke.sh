#!/usr/bin/env bash
# Smoke test for the telemetry endpoints: boot the loopback cluster with
# -metrics-addr, scrape /metrics while jobs run, and assert the core
# series are present. Fails the build if the exposition goes dark.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:19642"
OUT="$(mktemp)"
SCRAPE="$(mktemp)"
trap 'kill "$PID" 2>/dev/null || true; rm -f "$OUT" "$SCRAPE" "$SCRAPE.status" "$SCRAPE.trace"' EXIT

go build -o /tmp/tetris-cluster-smoke ./cmd/tetris-cluster
/tmp/tetris-cluster-smoke -nodes 2 -jobs 2 -compression 50 -metrics-addr "$ADDR" >"$OUT" 2>&1 &
PID=$!

# Wait for the exposition to come up, then for placements to appear.
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/metrics" >"$SCRAPE" 2>/dev/null &&
    grep -q '^tetris_rm_placements_total [1-9]' "$SCRAPE"; then
    break
  fi
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "cluster exited before metrics were scraped:" >&2
    cat "$OUT" >&2
    exit 1
  fi
  sleep 0.2
done

fail=0
for series in \
  'tetris_rm_placements_total [1-9]' \
  'tetris_rm_nodes_live 2' \
  'tetris_nm_heartbeat_rtt_seconds_count [1-9]' \
  'tetris_rm_schedule_round_seconds_count [1-9]' \
  'tetris_am_jobs_submitted_total [1-9]'; do
  if ! grep -q "^$series" "$SCRAPE"; then
    echo "MISSING: $series" >&2
    fail=1
  fi
done

# Fetch to files: grep -q on a pipe would close it early and, under
# pipefail, turn curl's resulting write error into a false failure.
curl -sf "http://$ADDR/debug/status" >"$SCRAPE.status" || true
grep -q '"nodes": 2' "$SCRAPE.status" || { echo "MISSING: /debug/status nodes" >&2; fail=1; }
curl -sf "http://$ADDR/debug/trace" >"$SCRAPE.trace" || true
grep -q '"outcome": "placed"' "$SCRAPE.trace" || { echo "MISSING: /debug/trace placed decision" >&2; fail=1; }

if [ "$fail" -ne 0 ]; then
  echo "--- scrape ---" >&2
  cat "$SCRAPE" >&2
  exit 1
fi

wait "$PID"
echo "metrics smoke OK"
