package tetris_test

import (
	"math"
	"testing"

	tetris "github.com/tetris-sched/tetris"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	cl := tetris.NewFacebookCluster(10)
	wl := tetris.GenerateWorkload(tetris.TraceConfig{
		Seed: 1, NumJobs: 5, NumMachines: 10, ArrivalSpanSec: 100, MeanTaskSeconds: 10,
	})
	res, err := tetris.Simulate(tetris.SimConfig{
		Cluster:   cl,
		Workload:  wl,
		Scheduler: tetris.NewScheduler(tetris.DefaultConfig()),
		MaxTime:   1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Jobs) != 5 {
		t.Fatalf("makespan %v, jobs %d", res.Makespan, len(res.Jobs))
	}

	base, err := tetris.Simulate(tetris.SimConfig{
		Cluster:   tetris.NewFacebookCluster(10),
		Workload:  wl,
		Scheduler: tetris.NewSlotFairScheduler(),
		MaxTime:   1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if imp := tetris.PerJobImprovement(base, res); len(imp) != 5 {
		t.Errorf("per-job improvements = %d entries", len(imp))
	}
	_ = tetris.Improvement(base.AvgJCT(), res.AvgJCT())
}

func TestFacadeVectorAndCluster(t *testing.T) {
	v := tetris.NewVector(16, 32, 200, 200, 1000, 1000)
	if v.Get(tetris.CPU) != 16 || v.Get(tetris.NetOut) != 1000 {
		t.Errorf("vector = %v", v)
	}
	cl := tetris.NewCluster(4, v, 2)
	if cl.Size() != 4 || cl.NumRacks() != 2 {
		t.Errorf("cluster = %d machines / %d racks", cl.Size(), cl.NumRacks())
	}
	if tetris.NewDeploymentCluster(4).CrossRackMbps == 0 {
		t.Error("deployment cluster should cap rack uplinks")
	}
}

func TestFacadeUpperBound(t *testing.T) {
	cl := tetris.NewFacebookCluster(8)
	wl := tetris.GenerateWorkload(tetris.TraceConfig{Seed: 2, NumJobs: 3, NumMachines: 8, MeanTaskSeconds: 10})
	ub, err := tetris.UpperBound(cl, wl)
	if err != nil {
		t.Fatal(err)
	}
	if ub.Makespan <= 0 || math.IsNaN(ub.AvgJCT()) {
		t.Errorf("bound: %v / %v", ub.Makespan, ub.AvgJCT())
	}
}

func TestFacadeWorkloadIO(t *testing.T) {
	wl := tetris.GenerateFacebookWorkload(tetris.TraceConfig{Seed: 3, NumJobs: 4, NumMachines: 5})
	s := tetris.SummarizeWorkload(wl)
	if s.NumJobs != 4 {
		t.Errorf("summary jobs = %d", s.NumJobs)
	}
	path := t.TempDir() + "/w.json"
	if err := tetris.SaveWorkload(path, wl); err != nil {
		t.Fatal(err)
	}
	got, err := tetris.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTasks() != wl.NumTasks() {
		t.Error("round trip mismatch")
	}
}

func TestFacadeSchedulers(t *testing.T) {
	if len(tetris.Scorers()) != 5 {
		t.Error("expected 5 scorers")
	}
	for _, s := range []tetris.Scheduler{
		tetris.NewScheduler(tetris.DefaultConfig()),
		tetris.NewSlotFairScheduler(),
		tetris.NewDRFScheduler(),
	} {
		if s.Name() == "" {
			t.Error("scheduler without name")
		}
	}
	if tetris.NewEstimator() == nil {
		t.Error("nil estimator")
	}
}
