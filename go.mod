module github.com/tetris-sched/tetris

go 1.22
