// Benchmarks: one per table and figure of the paper's evaluation. Each
// wraps the corresponding experiment runner at a reduced scale so the
// full suite is runnable as `go test -bench=. -benchmem`; cmd/tetris-bench
// runs the same experiments at full scale and prints their reports.
//
// These are macro-benchmarks: b.N iterations re-run the whole experiment,
// so expect seconds per iteration. Performance regressions in the
// scheduler or simulator show up directly in these numbers.
package tetris_test

import (
	"io"
	"testing"

	"github.com/tetris-sched/tetris/internal/experiments"
)

// benchScale keeps every experiment iteration in the single-digit-second
// range; shape fidelity at this scale is reduced (see EXPERIMENTS.md for
// full-scale results).
const benchScale = 0.1

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Params{Scale: benchScale, Seed: 42}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 1: the worked DRF-vs-packing example.
func BenchmarkFig1DRFvsPacking(b *testing.B) { benchExperiment(b, "fig1") }

// Figure 2: demand heatmaps.
func BenchmarkFig2Heatmap(b *testing.B) { benchExperiment(b, "fig2") }

// Table 2: demand correlation matrix.
func BenchmarkTable2Correlation(b *testing.B) { benchExperiment(b, "table2") }

// Table 3: resource tightness under the production scheduler.
func BenchmarkTable3Tightness(b *testing.B) { benchExperiment(b, "table3") }

// §2.2.3: the simple upper bound on packing gains.
func BenchmarkUpperBound(b *testing.B) { benchExperiment(b, "upper") }

// Figure 4: deployment workload, Tetris vs CS and DRF.
func BenchmarkFig4Deployment(b *testing.B) { benchExperiment(b, "fig4") }

// Figure 5: running tasks and utilization timeseries.
func BenchmarkFig5Timeseries(b *testing.B) { benchExperiment(b, "fig5") }

// Table 6: machine-level high-usage probabilities.
func BenchmarkTable6MachineUsage(b *testing.B) { benchExperiment(b, "table6") }

// Figure 6: resource tracker vs ingestion.
func BenchmarkFig6Ingestion(b *testing.B) { benchExperiment(b, "fig6") }

// Table 7: RM heartbeat-processing overheads.
func BenchmarkTable7Heartbeat(b *testing.B) { benchExperiment(b, "table7") }

// Figure 7: trace-driven simulation headline gains.
func BenchmarkFig7Simulation(b *testing.B) { benchExperiment(b, "fig7") }

// §5.3.1: over-allocation vs fragmentation gain split.
func BenchmarkGainSplit(b *testing.B) { benchExperiment(b, "gainsplit") }

// §5.3.1: SRTF-only and packing-only ablations.
func BenchmarkHeuristicAblation(b *testing.B) { benchExperiment(b, "heuronly") }

// Table 8: alignment scorer alternatives.
func BenchmarkTable8Scorers(b *testing.B) { benchExperiment(b, "table8") }

// Figure 8: fairness knob sweep.
func BenchmarkFig8FairnessKnob(b *testing.B) { benchExperiment(b, "fig8") }

// Figure 9: slowdowns per fairness knob.
func BenchmarkFig9Slowdown(b *testing.B) { benchExperiment(b, "fig9") }

// §5.3.2: relative integral unfairness.
func BenchmarkRelIntUnfairness(b *testing.B) { benchExperiment(b, "riu") }

// Figure 10: barrier knob sweep.
func BenchmarkFig10Barrier(b *testing.B) { benchExperiment(b, "fig10") }

// §5.3.3: remote penalty sensitivity.
func BenchmarkRemotePenalty(b *testing.B) { benchExperiment(b, "sens-rp") }

// §5.3.3: ε multiplier sensitivity.
func BenchmarkEpsilonSweep(b *testing.B) { benchExperiment(b, "sens-eps") }

// Figure 11: gains vs cluster load.
func BenchmarkFig11Load(b *testing.B) { benchExperiment(b, "fig11") }

// §4.1: gains under demand-estimation error.
func BenchmarkEstimationError(b *testing.B) { benchExperiment(b, "est-err") }
