// ingestion reproduces the paper's Figure 6 micro-benchmark in
// miniature: while data ingestion hammers one machine's disks, Tetris'
// resource tracker reports the hotspot and the scheduler places tasks
// elsewhere; a slot scheduler keeps placing tasks there and they
// straggle against the ingestion.
package main

import (
	"fmt"
	"log"

	tetris "github.com/tetris-sched/tetris"
)

func main() {
	mkWorkload := func() *tetris.Workload {
		wl := &tetris.Workload{NumMachines: 2}
		for jid := 0; jid < 30; jid++ {
			j := &tetris.Job{ID: jid, Weight: 1, Arrival: float64(jid) * 20}
			st := &tetris.Stage{Name: "scan"}
			for i := 0; i < 4; i++ {
				st.Tasks = append(st.Tasks, &tetris.Task{
					ID:     tetris.TaskID{Job: jid, Stage: 0, Index: i},
					Peak:   tetris.NewVector(1, 2, 50, 0, 0, 0),
					Work:   tetris.Work{CPUSeconds: 5},
					Inputs: []tetris.InputBlock{{Machine: -1, SizeMB: 500}},
				})
			}
			j.Stages = []*tetris.Stage{st}
			wl.Jobs = append(wl.Jobs, j)
		}
		return wl
	}
	// Ingestion occupies most of machine 0's disks during [200, 500)s.
	ingest := []tetris.Activity{{
		Machine: 0, Start: 200, End: 500,
		Usage: tetris.NewVector(0, 0, 90, 90, 0, 0),
	}}

	tetrisCfg := tetris.DefaultConfig()
	tetrisCfg.HotspotThreshold = 0.8

	fmt.Println("ingestion on machine 0 during [200,500)s; disk-heavy scan jobs arrive steadily")
	fmt.Println()
	for _, s := range []struct {
		name string
		sch  tetris.Scheduler
	}{
		{"tetris", tetris.NewScheduler(tetrisCfg)},
		{"slot-fair", tetris.NewSlotFairScheduler()},
	} {
		res, err := tetris.Simulate(tetris.SimConfig{
			Cluster:     tetris.NewCluster(2, tetris.NewVector(8, 16, 100, 100, 1000, 1000), 0),
			Workload:    mkWorkload(),
			Scheduler:   s.sch,
			Activities:  ingest,
			RecordTasks: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		onHot, during := 0, 0
		var durSum float64
		for _, tr := range res.Tasks {
			if tr.Start >= 200 && tr.Start < 500 {
				during++
				durSum += tr.Finish - tr.Start
				if tr.Machine == 0 {
					onHot++
				}
			}
		}
		mean := 0.0
		if during > 0 {
			mean = durSum / float64(during)
		}
		fmt.Printf("%-10s placed %2d/%2d window tasks on the ingesting machine; mean duration in window %.1fs\n",
			s.name, onHot, during, mean)
	}
	fmt.Println("\nTetris sees the tracker's report and avoids the hotspot; the slot scheduler does not.")
}
