// fairnessknob sweeps Tetris' fairness knob f on a small workload,
// showing the paper's §3.4/§5.3.2 trade-off in miniature: f=0 is the
// most efficient (and most unfair) schedule, f→1 is perfectly fair, and
// f≈0.25 captures nearly all of the efficiency with almost none of the
// unfairness.
package main

import (
	"fmt"
	"log"

	tetris "github.com/tetris-sched/tetris"
)

func main() {
	const machines = 20
	wl := tetris.GenerateWorkload(tetris.TraceConfig{
		Seed:           1,
		NumJobs:        30,
		NumMachines:    machines,
		ArrivalSpanSec: 2000,
	})

	run := func(s tetris.Scheduler) *tetris.Result {
		res, err := tetris.Simulate(tetris.SimConfig{
			Cluster:   tetris.NewFacebookCluster(machines),
			Workload:  wl,
			Scheduler: s,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	fair := run(tetris.NewSlotFairScheduler())

	fmt.Printf("fairness knob sweep (%d jobs, %d machines; baseline: slot-fair)\n\n", len(wl.Jobs), machines)
	fmt.Printf("%6s %14s %14s %18s\n", "f", "JCT gain", "makespan gain", "jobs slowed down")
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
		cfg := tetris.DefaultConfig()
		cfg.Fairness = f
		res := run(tetris.NewScheduler(cfg))
		sd := slowdowns(fair, res)
		fmt.Printf("%6.2f %13.1f%% %13.1f%% %17.1f%%\n", f,
			tetris.Improvement(fair.AvgJCT(), res.AvgJCT()),
			tetris.Improvement(fair.Makespan, res.Makespan),
			100*sd)
	}
	fmt.Println("\nf≈0.25 keeps nearly the whole efficiency gain while slowing almost no jobs —")
	fmt.Println("the operating point the paper deploys.")
}

func slowdowns(base, ours *tetris.Result) float64 {
	slowed, n := 0, 0
	for id, b := range base.Jobs {
		o, ok := ours.Jobs[id]
		if !ok || b.JCT <= 0 {
			continue
		}
		n++
		if o.JCT > b.JCT*1.001 {
			slowed++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(slowed) / float64(n)
}
