// drfvspacking reproduces the worked example of the paper's Figure 1:
// three map/reduce jobs on an 18-core / 36 GB / 3 Gbps cluster, where a
// fair allocation (DRF) finishes every job late while a packing schedule
// finishes them at 2t, 3t and 4t by exploiting the complementarity of
// map (CPU/memory) and reduce (network) demands across the barrier.
package main

import (
	"fmt"
	"log"
	"sort"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/trace"
)

func main() {
	const t = 10.0 // one "t" of the figure, in seconds

	// Machine 0 is the compute cluster of the example; machine 1 is a
	// storage-only node serving the reducers' shuffle input, so reduce
	// reads traverse machine 0's 3 Gbps NIC.
	cl := tetris.NewCluster(2, resources.Vector{}, 0)
	cl.Machines[0].Capacity = tetris.NewVector(18, 36, 1000, 1000, 3000, 100)
	cl.Machines[1].Capacity = tetris.NewVector(0, 0, 10000, 0, 0, 10000)

	fmt.Println("Figure 1: jobs A (18 maps ⟨1 core, 2 GB⟩), B (6 maps ⟨3 cores, 1 GB⟩), C (2 maps ⟨3 cores, 1 GB⟩)")
	fmt.Println("          every job has 3 reduce tasks needing 1 Gbps; all tasks run t =", t, "s")
	fmt.Println()

	for _, s := range []struct {
		name string
		sch  tetris.Scheduler
	}{
		{"DRF (cpu,mem,net)", scheduler.NewDRFWithNetwork()},
		{"Tetris (packing)", tetris.NewScheduler(tetris.DefaultConfig())},
	} {
		res, err := tetris.Simulate(tetris.SimConfig{
			Cluster:   cl,
			Workload:  trace.Fig1Workload(t),
			Scheduler: s.sch,
		})
		if err != nil {
			log.Fatal(err)
		}
		var ids []int
		for id := range res.Jobs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Printf("%-18s", s.name)
		for _, id := range ids {
			fmt.Printf("  %c: %4.2ft", 'A'+id, res.Jobs[id].Finish/t)
		}
		fmt.Printf("   makespan %4.2ft  avg JCT %4.2ft\n", res.Makespan/t, res.AvgJCT()/t)
	}

	fmt.Println("\nThe packing schedule finishes A/B/C at 4t/3t/2t — exactly Figure 1(b):")
	fmt.Println("avoiding fragmentation and exploiting complementary demands lets every job finish earlier.")
}
