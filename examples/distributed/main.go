// distributed boots the full YARN-style prototype on loopback TCP — a
// resource manager running the Tetris policy, four node managers with
// token-bucket enforcement, and two concurrent job managers — and runs a
// small workload end to end with time-compressed task execution.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/am"
	"github.com/tetris-sched/tetris/internal/nm"
	"github.com/tetris-sched/tetris/internal/rm"
)

func main() {
	srv, err := rm.New("127.0.0.1:0", rm.Config{
		Scheduler: tetris.NewScheduler(tetris.DefaultConfig()),
		Estimator: tetris.NewEstimator(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("resource manager on", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var nmWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		node := nm.New(nm.Config{
			NodeID:      i,
			Capacity:    tetris.NewVector(16, 32, 200, 200, 1000, 1000),
			RMAddr:      srv.Addr(),
			Compression: 100, // 100 s of emulated work per wall second
		})
		nmWG.Add(1)
		go func() {
			defer nmWG.Done()
			node.Run(ctx)
		}()
	}
	fmt.Println("4 node managers heartbeating")

	// Two concurrent jobs: a CPU-bound one and a memory-bound one.
	mkJob := func(id int, peak tetris.Vector, n int) *tetris.Job {
		j := &tetris.Job{ID: id, Name: fmt.Sprintf("job-%d", id), Weight: 1}
		st := &tetris.Stage{Name: "work"}
		for i := 0; i < n; i++ {
			st.Tasks = append(st.Tasks, &tetris.Task{
				ID:   tetris.TaskID{Job: id, Stage: 0, Index: i},
				Peak: peak,
				Work: tetris.Work{CPUSeconds: peak.Get(tetris.CPU) * 30},
			})
		}
		j.Stages = []*tetris.Stage{st}
		return j
	}
	jobs := []*tetris.Job{
		mkJob(0, tetris.NewVector(4, 2, 0, 0, 0, 0), 16),
		mkJob(1, tetris.NewVector(1, 8, 0, 0, 0, 0), 16),
	}

	var amWG sync.WaitGroup
	for _, j := range jobs {
		j := j
		amWG.Add(1)
		go func() {
			defer amWG.Done()
			res, err := am.Run(ctx, am.Config{RMAddr: srv.Addr(), Job: j})
			if err != nil {
				log.Printf("job %d: %v", j.ID, err)
				return
			}
			fmt.Printf("job %d finished in %s wall time (≈%.0fs emulated)\n",
				j.ID, res.Wall.Round(time.Millisecond), res.Wall.Seconds()*100)
		}()
	}
	amWG.Wait()

	nmMean, _, amMean, _ := srv.HeartbeatStats()
	fmt.Printf("RM heartbeat processing: NM mean %.0fµs, AM mean %.0fµs\n", nmMean*1e6, amMean*1e6)
	cancel()
	nmWG.Wait()
}
