// Quickstart: generate a small workload, run it under Tetris and under
// the two baseline schedulers, and print the gains — the library's
// ten-line tour.
package main

import (
	"fmt"
	"log"

	tetris "github.com/tetris-sched/tetris"
	"github.com/tetris-sched/tetris/internal/stats"
)

func main() {
	const machines = 20

	// A workload in the style of the paper's §5.1 suite: map/reduce jobs
	// from four size/selectivity classes, arriving over ~8 minutes.
	wl := tetris.GenerateWorkload(tetris.TraceConfig{
		Seed:           1,
		NumJobs:        30,
		NumMachines:    machines,
		ArrivalSpanSec: 2000,
	})
	fmt.Printf("workload: %d jobs, %d tasks on %d machines\n\n", len(wl.Jobs), wl.NumTasks(), machines)

	run := func(name string, s tetris.Scheduler) *tetris.Result {
		res, err := tetris.Simulate(tetris.SimConfig{
			Cluster:   tetris.NewFacebookCluster(machines),
			Workload:  wl,
			Scheduler: s,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s makespan %6.0fs   avg JCT %6.0fs   mean task %5.1fs\n",
			name, res.Makespan, res.AvgJCT(), res.MeanTaskDuration())
		return res
	}

	fair := run("slot-fair", tetris.NewSlotFairScheduler())
	drf := run("drf", tetris.NewDRFScheduler())
	tet := run("tetris", tetris.NewScheduler(tetris.DefaultConfig()))

	fmt.Printf("\ntetris vs slot-fair: avg JCT gain %.0f%% (median job %.0f%%), makespan gain %.0f%%\n",
		tetris.Improvement(fair.AvgJCT(), tet.AvgJCT()),
		stats.Median(tetris.PerJobImprovement(fair, tet)),
		tetris.Improvement(fair.Makespan, tet.Makespan))
	fmt.Printf("tetris vs drf:       avg JCT gain %.0f%% (median job %.0f%%), makespan gain %.0f%%\n",
		tetris.Improvement(drf.AvgJCT(), tet.AvgJCT()),
		stats.Median(tetris.PerJobImprovement(drf, tet)),
		tetris.Improvement(drf.Makespan, tet.Makespan))
}
