// Package tetris is a Go implementation of Tetris, the multi-resource
// cluster scheduler of "Multi-Resource Packing for Cluster Schedulers"
// (Grandl, Ananthanarayanan, Kandula, Rao, Akella — SIGCOMM 2014).
//
// Tetris packs tasks onto machines using all of their resource demands —
// CPU, memory, disk read/write bandwidth and network in/out bandwidth —
// scoring each feasible (task, machine) pair by the dot product of the
// task's demand vector and the machine's available-resource vector, and
// combining that alignment with a multi-resource shortest-remaining-
// time-first job score, a fairness knob and barrier-aware preferences.
//
// The module contains:
//
//   - the Tetris scheduling policy plus the baselines the paper compares
//     against (slot-based fair scheduling and Dominant Resource
//     Fairness), behind a single Scheduler interface;
//   - a trace-driven, fluid-flow cluster simulator;
//   - a calibrated synthetic workload generator reproducing the
//     published production-trace statistics;
//   - a distributed prototype (resource manager, node managers and job
//     managers over TCP) mirroring the paper's YARN integration;
//   - runners that regenerate every table and figure of the paper's
//     evaluation (see cmd/tetris-bench and EXPERIMENTS.md).
//
// # Quick start
//
//	cl := tetris.NewFacebookCluster(20)
//	wl := tetris.GenerateWorkload(tetris.TraceConfig{Seed: 1, NumJobs: 40, NumMachines: 20})
//	res, err := tetris.Simulate(tetris.SimConfig{
//		Cluster:   cl,
//		Workload:  wl,
//		Scheduler: tetris.NewScheduler(tetris.DefaultConfig()),
//	})
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.AvgJCT())
//
// See examples/ for complete programs.
package tetris

import (
	"github.com/tetris-sched/tetris/internal/bound"
	"github.com/tetris-sched/tetris/internal/cluster"
	"github.com/tetris-sched/tetris/internal/estimator"
	"github.com/tetris-sched/tetris/internal/faults"
	"github.com/tetris-sched/tetris/internal/gang"
	"github.com/tetris-sched/tetris/internal/resources"
	"github.com/tetris-sched/tetris/internal/scheduler"
	"github.com/tetris-sched/tetris/internal/sim"
	"github.com/tetris-sched/tetris/internal/trace"
	"github.com/tetris-sched/tetris/internal/workload"
)

// Resource model.
type (
	// Vector is a point in the six-dimensional resource space: cores, GB
	// of memory, MB/s disk read, MB/s disk write, Mb/s network in, Mb/s
	// network out.
	Vector = resources.Vector
	// ResourceKind identifies one dimension of a Vector.
	ResourceKind = resources.Kind
)

// Resource dimensions.
const (
	CPU       = resources.CPU
	Memory    = resources.Memory
	DiskRead  = resources.DiskRead
	DiskWrite = resources.DiskWrite
	NetIn     = resources.NetIn
	NetOut    = resources.NetOut
)

// NewVector builds a resource vector from the six dimension values in
// canonical order (cores, GB, MB/s, MB/s, Mb/s, Mb/s).
func NewVector(cpu, mem, diskR, diskW, netIn, netOut float64) Vector {
	return resources.New(cpu, mem, diskR, diskW, netIn, netOut)
}

// Workload model.
type (
	// Workload is a set of jobs plus the machine universe their input
	// blocks refer to.
	Workload = workload.Workload
	// Job is a DAG of stages with barrier dependencies.
	Job = workload.Job
	// Stage is a set of statistically similar tasks.
	Stage = workload.Stage
	// Task is the schedulable unit: peak demands plus work totals.
	Task = workload.Task
	// TaskID names a task (job, stage, index).
	TaskID = workload.TaskID
	// InputBlock is one piece of task input resident on a machine.
	InputBlock = workload.InputBlock
	// Work holds a task's total work (cpu-seconds, MB written).
	Work = workload.Work
)

// Cluster model.
type (
	// Cluster is a set of machines organized into racks.
	Cluster = cluster.Cluster
	// Machine is one server with a multi-resource capacity.
	Machine = cluster.Machine
)

// NewCluster builds a cluster of n identical machines.
func NewCluster(n int, capacity Vector, rackSize int) *Cluster {
	return cluster.New(n, capacity, rackSize)
}

// NewFacebookCluster builds an n-machine cluster with the Facebook
// trace-replay profile of the paper (16 cores, 32 GB, 4×50 MB/s disks,
// 1 Gbps NICs).
func NewFacebookCluster(n int) *Cluster { return cluster.NewFacebook(n) }

// NewDeploymentCluster builds an n-machine cluster approximating the
// paper's 250-machine deployment (10 Gbps NICs, 2.5× oversubscribed rack
// uplinks).
func NewDeploymentCluster(n int) *Cluster { return cluster.NewDeployment(n) }

// Scheduling policies.
type (
	// Scheduler is a pluggable scheduling policy.
	Scheduler = scheduler.Scheduler
	// Config parameterizes the Tetris scheduler: fairness knob, barrier
	// knob, remote penalty, ε multiplier, alignment scorer.
	Config = scheduler.TetrisConfig
	// Scorer is an alignment-score heuristic (Table 8 alternatives).
	Scorer = scheduler.Scorer
	// Assignment is one task→machine placement decision.
	Assignment = scheduler.Assignment
	// View is the cluster snapshot a Scheduler decides over.
	View = scheduler.View
	// Core selects between the Tetris scheduler's decision-identical
	// Schedule implementations.
	Core = scheduler.Core
	// ParallelStats is a snapshot of the parallel core's counters.
	ParallelStats = scheduler.ParallelStats
)

// Tetris Schedule cores: the incremental hot path (default), the
// reference implementation it is differentially tested against, and
// the parallel core (concurrent scoring scatter feeding the same
// reduce; set Config.Workers to size the pool).
const (
	CoreIncremental = scheduler.CoreIncremental
	CoreReference   = scheduler.CoreReference
	CoreParallel    = scheduler.CoreParallel
)

// DefaultConfig returns the paper's default operating point: fairness
// knob f=0.25, barrier knob b=0.9, 10% remote penalty, ε=ā/p̄ and cosine
// alignment.
func DefaultConfig() Config { return scheduler.DefaultTetrisConfig() }

// NewScheduler creates a Tetris scheduler.
func NewScheduler(cfg Config) Scheduler { return scheduler.NewTetris(cfg) }

// NewSlotFairScheduler creates the slot-based fair ("capacity")
// scheduler baseline: memory-defined slots, fair slot shares, no
// awareness of CPU, disk or network.
func NewSlotFairScheduler() Scheduler { return scheduler.NewSlotFair() }

// NewDRFScheduler creates the Dominant Resource Fairness baseline over
// CPU and memory.
func NewDRFScheduler() Scheduler { return scheduler.NewDRF() }

// Scorers returns all implemented alignment heuristics (cosine,
// L2-norm-diff, L2-norm-ratio, FFD-prod, FFD-sum).
func Scorers() []Scorer { return scheduler.Scorers() }

// Simulation.
type (
	// SimConfig parameterizes one simulation run.
	SimConfig = sim.Config
	// Result aggregates a run's outcome: makespan, per-job completion
	// times, utilization samples, unfairness integrals.
	Result = sim.Result
	// JobResult is one job's outcome.
	JobResult = sim.JobResult
	// Activity is non-job background activity (ingestion, evacuation).
	Activity = sim.Activity
)

// Simulate runs one simulation to completion.
func Simulate(cfg SimConfig) (*Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Improvement returns 100×(baseline−ours)/baseline, the paper's gain
// metric.
func Improvement(baseline, ours float64) float64 { return sim.Improvement(baseline, ours) }

// PerJobImprovement returns per-job JCT improvements of ours over base.
func PerJobImprovement(base, ours *Result) []float64 { return sim.PerJobImprovement(base, ours) }

// UpperBound computes the §2.2.3 aggregate upper bound on packing gains
// for a workload on a cluster.
func UpperBound(cl *Cluster, wl *Workload) (*Result, error) { return bound.Run(cl, wl) }

// Workload generation.
type (
	// TraceConfig parameterizes synthetic workload generation.
	TraceConfig = trace.Config
	// TraceSummary holds §2.2-style workload statistics.
	TraceSummary = trace.Summary
)

// GenerateWorkload builds the §5.1 workload suite: jobs drawn from the
// four size/selectivity classes with uniform arrivals.
func GenerateWorkload(cfg TraceConfig) *Workload { return trace.GenerateSuite(cfg) }

// GenerateFacebookWorkload builds a heavy-tailed Facebook-like trace.
func GenerateFacebookWorkload(cfg TraceConfig) *Workload { return trace.GenerateFacebookLike(cfg) }

// SummarizeWorkload computes demand dispersion and correlation
// statistics (Tables 2–3, Figure 2).
func SummarizeWorkload(wl *Workload) *TraceSummary { return trace.Summarize(wl) }

// SaveWorkload writes a workload as JSON to the named file.
func SaveWorkload(path string, wl *Workload) error { return trace.SaveFile(path, wl) }

// LoadWorkload reads a workload from the named file.
func LoadWorkload(path string) (*Workload, error) { return trace.LoadFile(path) }

// Gang scheduling.
type (
	// GangConfig parameterizes the gang coordinator: hold timeout,
	// preemption deadline, wave spacing, per-round eviction budget.
	GangConfig = gang.Config
	// GangCoordinator wraps a Scheduler with all-or-nothing gang
	// admission, timeout-and-release of hoarded placements, and
	// checkpoint-aware preemption of low-priority preemptible tasks.
	GangCoordinator = gang.Coordinator
	// GangDecision is one round's gang outcome: assignments plus the
	// preemptions, commits and releases the round produced.
	GangDecision = gang.Decision
)

// DefaultGangConfig returns the gang coordinator's default operating
// point.
func DefaultGangConfig() GangConfig { return gang.DefaultConfig() }

// NewGangCoordinator wraps inner with the gang-admission layer. The
// wrapped scheduler is a plain Scheduler (gang jobs are admitted
// all-or-nothing, singletons pass through); use Decide directly to
// also observe preemptions, commits and releases.
func NewGangCoordinator(inner Scheduler, cfg GangConfig) *GangCoordinator {
	return gang.New(inner, cfg)
}

// GenerateGangWorkload builds the gang-scenario mix: gangFraction
// ML/MPI gang jobs among small preemptible batch fillers (≤0 defaults
// to 0.3).
func GenerateGangWorkload(cfg TraceConfig, gangFraction float64) *Workload {
	return trace.GenerateGangMix(cfg, gangFraction)
}

// Fault injection & recovery.
type (
	// FaultPlan is a deterministic schedule of machine crashes,
	// recoveries and slowdowns, plus straggler-injection knobs.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault (time, kind, machine, factor).
	FaultEvent = faults.Event
	// FaultPlanConfig parameterizes random fault-plan generation.
	FaultPlanConfig = faults.PlanConfig
	// FaultRecord is one observed fault event: what happened, to which
	// machine, how many task attempts it killed, how long it lasted.
	FaultRecord = faults.Record
	// RecoveryStats aggregates a run's fault records.
	RecoveryStats = faults.RecoveryStats
)

// GenerateFaultPlan builds a seeded random fault plan: identical configs
// yield identical plans, so chaos runs replay bit for bit.
func GenerateFaultPlan(cfg FaultPlanConfig) *FaultPlan { return faults.Generate(cfg) }

// SummarizeFaults aggregates fault records into recovery statistics.
func SummarizeFaults(recs []FaultRecord) RecoveryStats { return faults.Summarize(recs) }

// Estimation.
type (
	// Estimator estimates task demands from completed tasks and
	// recurring-job history (§4.1).
	Estimator = estimator.Estimator
)

// NewEstimator creates a demand estimator with the paper's defaults.
func NewEstimator() *Estimator { return estimator.New() }
